package storage

import (
	"strings"
	"testing"
	"testing/quick"

	"github.com/adamant-db/adamant/internal/vec"
)

func TestCSVRoundtrip(t *testing.T) {
	tb := NewTable("demo", 3)
	tb.MustAddColumn("a", vec.FromInt32([]int32{1, -2, 3}))
	tb.MustAddColumn("b", vec.FromInt32([]int32{10, 20, 30}))

	var sb strings.Builder
	if err := WriteCSV(tb, &sb); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV("demo", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows() != 3 {
		t.Fatalf("rows = %d", got.Rows())
	}
	for _, col := range []string{"a", "b"} {
		if !vec.Equal(tb.MustColumn(col), got.MustColumn(col)) {
			t.Errorf("column %s corrupted", col)
		}
	}
}

func TestCSVRoundtripProperty(t *testing.T) {
	f := func(a, b []int32) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		tb := NewTable("p", n)
		tb.MustAddColumn("x", vec.FromInt32(a[:n]))
		tb.MustAddColumn("y", vec.FromInt32(b[:n]))
		var sb strings.Builder
		if err := WriteCSV(tb, &sb); err != nil {
			return false
		}
		got, err := ReadCSV("p", strings.NewReader(sb.String()))
		if err != nil {
			return false
		}
		return vec.Equal(tb.MustColumn("x"), got.MustColumn("x")) &&
			vec.Equal(tb.MustColumn("y"), got.MustColumn("y"))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCSVReadErrors(t *testing.T) {
	cases := map[string]string{
		"empty header":   "",
		"ragged row":     "a,b\n1\n",
		"non-numeric":    "a\nxyz\n",
		"overflow int32": "a\n99999999999\n",
	}
	for name, input := range cases {
		if _, err := ReadCSV("bad", strings.NewReader(input)); err == nil {
			t.Errorf("%s: accepted %q", name, input)
		}
	}
	// Trailing line without newline still parses.
	tb, err := ReadCSV("ok", strings.NewReader("a\n1\n2"))
	if err != nil || tb.Rows() != 2 {
		t.Errorf("no-trailing-newline: rows=%v err=%v", tb, err)
	}
	// Blank lines are skipped.
	tb, err = ReadCSV("ok", strings.NewReader("a\n1\n\n2\n"))
	if err != nil || tb.Rows() != 2 {
		t.Errorf("blank lines: err=%v", err)
	}
}

func TestCSVWriteRejectsNonInt32(t *testing.T) {
	tb := NewTable("t", 1)
	tb.MustAddColumn("a", vec.FromInt64([]int64{1}))
	if err := WriteCSV(tb, &strings.Builder{}); err == nil {
		t.Error("int64 column accepted")
	}
}
