package storage

import (
	"errors"
	"testing"

	"github.com/adamant-db/adamant/internal/vec"
)

func TestTableBasics(t *testing.T) {
	tb := NewTable("t", 3)
	if err := tb.AddColumn("a", vec.FromInt32([]int32{1, 2, 3})); err != nil {
		t.Fatal(err)
	}
	if err := tb.AddColumn("b", vec.FromInt64([]int64{4, 5, 6})); err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != 3 || tb.Bytes() != 12+24 {
		t.Errorf("rows=%d bytes=%d", tb.Rows(), tb.Bytes())
	}
	col, err := tb.Column("a")
	if err != nil || col.I32()[1] != 2 {
		t.Errorf("column a: %v", err)
	}
	if _, err := tb.Column("zzz"); !errors.Is(err, ErrUnknownColumn) {
		t.Errorf("unknown column: %v", err)
	}
	if got := tb.ColumnNames(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("names = %v", got)
	}
	if len(tb.Columns()) != 2 {
		t.Error("Columns() wrong")
	}
}

func TestTableRejections(t *testing.T) {
	tb := NewTable("t", 3)
	if err := tb.AddColumn("a", vec.FromInt32([]int32{1})); !errors.Is(err, ErrLengthMismatch) {
		t.Errorf("length mismatch: %v", err)
	}
	tb.MustAddColumn("a", vec.FromInt32([]int32{1, 2, 3}))
	if err := tb.AddColumn("a", vec.FromInt32([]int32{4, 5, 6})); err == nil {
		t.Error("duplicate column accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustColumn of missing column must panic")
		}
	}()
	tb.MustColumn("missing")
}

func TestCatalog(t *testing.T) {
	c := NewCatalog()
	a := NewTable("alpha", 1)
	a.MustAddColumn("x", vec.FromInt32([]int32{1}))
	b := NewTable("beta", 2)
	b.MustAddColumn("y", vec.FromInt32([]int32{1, 2}))
	c.Add(a)
	c.Add(b)

	if got := c.Names(); len(got) != 2 || got[0] != "alpha" {
		t.Errorf("names = %v", got)
	}
	tb, err := c.Table("beta")
	if err != nil || tb.Rows() != 2 {
		t.Errorf("beta: %v", err)
	}
	if _, err := c.Table("gamma"); !errors.Is(err, ErrUnknownTable) {
		t.Errorf("unknown table: %v", err)
	}
	if c.Bytes() != 4+8 {
		t.Errorf("catalog bytes = %d", c.Bytes())
	}
}
