package storage

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/adamant-db/adamant/internal/vec"
)

// ReadCSV loads a table from CSV with a header row of column names and
// int32 cells — the format cmd/tpchgen writes. The table name comes from
// the caller (typically the file's base name).
func ReadCSV(name string, r io.Reader) (*Table, error) {
	br := bufio.NewReaderSize(r, 1<<20)

	header, err := readLine(br)
	if err != nil {
		return nil, fmt.Errorf("storage: %s: reading header: %w", name, err)
	}
	cols := strings.Split(header, ",")
	if len(cols) == 0 || cols[0] == "" {
		return nil, fmt.Errorf("storage: %s: empty header", name)
	}
	for i, c := range cols {
		cols[i] = strings.TrimSpace(c)
	}

	data := make([][]int32, len(cols))
	row := 0
	for {
		line, err := readLine(br)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("storage: %s row %d: %w", name, row+1, err)
		}
		if line == "" {
			continue
		}
		cells := strings.Split(line, ",")
		if len(cells) != len(cols) {
			return nil, fmt.Errorf("storage: %s row %d has %d cells, want %d", name, row+1, len(cells), len(cols))
		}
		for i, cell := range cells {
			v, err := strconv.ParseInt(strings.TrimSpace(cell), 10, 32)
			if err != nil {
				return nil, fmt.Errorf("storage: %s row %d column %s: %w", name, row+1, cols[i], err)
			}
			data[i] = append(data[i], int32(v))
		}
		row++
	}

	t := NewTable(name, row)
	for i, col := range cols {
		if err := t.AddColumn(col, vec.FromInt32(data[i])); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// WriteCSV writes the table as CSV with a header row. Only int32 columns
// are supported (the generator's column type).
func WriteCSV(t *Table, w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	cols := t.Columns()
	for i, c := range cols {
		if c.Data.Type() != vec.Int32 {
			return fmt.Errorf("storage: WriteCSV supports int32 columns; %s.%s is %s", t.Name, c.Name, c.Data.Type())
		}
		if i > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString(c.Name)
	}
	bw.WriteByte('\n')
	for row := 0; row < t.Rows(); row++ {
		for i, c := range cols {
			if i > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(strconv.FormatInt(int64(c.Data.I32()[row]), 10))
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// readLine returns the next line without its terminator, io.EOF at end.
func readLine(br *bufio.Reader) (string, error) {
	line, err := br.ReadString('\n')
	if err == io.EOF && line != "" {
		return strings.TrimRight(line, "\r\n"), nil
	}
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}
