package graph

import (
	"fmt"
	"sort"
)

// Pipeline is one query pipeline: a maximal run of primitives between
// pipeline breakers (§III-B2). The execution models treat a pipeline as an
// execution group, processing all of its primitives together chunk by
// chunk; the breakers that terminate it materialize their results in
// device memory for the pipelines that follow.
type Pipeline struct {
	// Index is the pipeline's position in execution order.
	Index int
	// Nodes lists the pipeline's task nodes in topological order.
	Nodes []NodeID
	// Scans lists the host-column inputs the pipeline streams in chunks.
	Scans []NodeID
	// DependsOn lists pipelines whose breaker outputs this one consumes.
	DependsOn []int
}

func (p *Pipeline) String() string {
	return fmt.Sprintf("pipeline%d(%d nodes, %d scans)", p.Index, len(p.Nodes), len(p.Scans))
}

// BuildPipelines splits the graph into its query pipelines: the connected
// regions of task nodes linked by non-breaker data flow. A scan node binds
// all of its consumers into one pipeline — a pipeline is one streamed pass
// over its inputs, so everything reading a scan processes the same chunks
// (plans that need separate passes over the same column add separate scan
// nodes). Consumers of a breaker's output belong to a later pipeline and
// record the dependency. Pipelines come back in a valid execution order.
func (g *Graph) BuildPipelines() ([]*Pipeline, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}

	// Union task nodes across non-breaker edges: un-materialized
	// intermediates bind producer and consumer into one pipeline. The
	// breaker itself belongs to the pipeline it terminates, so only its
	// *outgoing* edges split regions.
	parent := make([]int, len(g.nodes))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	for _, e := range g.edges {
		src := g.Node(e.From)
		if src.Breaker() {
			continue
		}
		union(int(e.From), int(e.To))
	}

	// Group task nodes by region, ordered by first node index (insertion
	// order is topological, so this is a valid execution order).
	regionNodes := make(map[int][]NodeID)
	var roots []int
	for _, n := range g.nodes {
		if n.IsScan() {
			continue
		}
		r := find(int(n.ID))
		if _, seen := regionNodes[r]; !seen {
			roots = append(roots, r)
		}
		regionNodes[r] = append(regionNodes[r], n.ID)
	}
	sort.Slice(roots, func(i, j int) bool {
		return regionNodes[roots[i]][0] < regionNodes[roots[j]][0]
	})

	pipelines := make([]*Pipeline, 0, len(roots))
	indexOfRegion := make(map[int]int, len(roots))
	for i, r := range roots {
		indexOfRegion[r] = i
		pipelines = append(pipelines, &Pipeline{Index: i, Nodes: regionNodes[r]})
	}

	// Attach scans and record breaker dependencies.
	for _, n := range g.nodes {
		if !n.IsScan() {
			continue
		}
		idx, ok := indexOfRegion[find(int(n.ID))]
		if !ok {
			return nil, fmt.Errorf("%w: %s has no consumer", ErrBadGraph, n)
		}
		pipelines[idx].Scans = append(pipelines[idx].Scans, n.ID)
	}
	for _, e := range g.edges {
		src := g.Node(e.From)
		if !src.Breaker() {
			continue
		}
		dst := indexOfRegion[find(int(e.To))]
		from := indexOfRegion[find(int(e.From))]
		if from == dst {
			return nil, fmt.Errorf("%w: breaker %s consumed within its own pipeline", ErrBadGraph, src)
		}
		if from > dst {
			return nil, fmt.Errorf("%w: pipeline %d consumes breaker %s of later pipeline %d",
				ErrBadGraph, dst, src, from)
		}
		p := pipelines[dst]
		if !containsInt(p.DependsOn, from) {
			p.DependsOn = append(p.DependsOn, from)
		}
	}

	// Every pipeline's scans must agree on length: they chunk in lockstep.
	for _, p := range pipelines {
		rows := -1
		for _, sid := range p.Scans {
			n := g.Node(sid)
			if rows < 0 {
				rows = n.Scan.Data.Len()
				continue
			}
			if n.Scan.Data.Len() != rows {
				return nil, fmt.Errorf("%w: %s scans columns of different lengths (%d vs %d)",
					ErrBadGraph, p, rows, n.Scan.Data.Len())
			}
		}
	}
	return pipelines, nil
}

// ScanRows returns the number of input rows the pipeline streams (0 for
// pipelines that only consume device-resident results).
func (p *Pipeline) ScanRows(g *Graph) int {
	if len(p.Scans) == 0 {
		return 0
	}
	return g.Node(p.Scans[0]).Scan.Data.Len()
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
