package graph

import (
	"testing"

	"github.com/adamant-db/adamant/internal/device"
	"github.com/adamant-db/adamant/internal/kernels"
	"github.com/adamant-db/adamant/internal/primitive"
	"github.com/adamant-db/adamant/internal/task"
	"github.com/adamant-db/adamant/internal/vec"
)

const dev2 = device.ID(1)

func mustAgg(t *testing.T, op kernels.AggOp) *task.Task {
	t.Helper()
	a, err := task.NewAggBlock(op, vec.Int64, "agg")
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func fusedNodes(g *Graph) []*Node {
	var out []*Node
	for _, n := range g.Nodes() {
		if n.IsScan() {
			continue
		}
		if n.Task.Kind == primitive.FusedAgg || n.Task.Kind == primitive.FusedMaterialize {
			out = append(out, n)
		}
	}
	return out
}

// TestFuseQ6LikeChain pins the full rewrite of the canonical fusible shape:
// filters → AND → materializes → map → aggregate collapses to the scans plus
// one FUSED_AGG_BLOCK, with the predicate and map micro-program laid out in
// the parameters exactly as the fused kernel decodes them.
func TestFuseQ6LikeChain(t *testing.T) {
	g := buildQ6Like(t)
	fg := Fuse(g)
	if fg == g {
		t.Fatal("fusible graph came back unchanged")
	}
	if err := fg.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(fg.Nodes()) != 4 || len(fg.Edges()) != 3 {
		t.Fatalf("fused shape: %d nodes, %d edges, want 4 and 3", len(fg.Nodes()), len(fg.Edges()))
	}
	fn := fusedNodes(fg)
	if len(fn) != 1 {
		t.Fatalf("got %d fused nodes, want 1", len(fn))
	}
	f := fn[0]
	if f.Task.Kind != primitive.FusedAgg || f.Task.Kernel != "fused_filter_agg" {
		t.Fatalf("fused node is %s/%s", f.Task.Kind, f.Task.Kernel)
	}
	if f.Task.NInputs != 3 {
		t.Errorf("fused NInputs = %d, want 3 (scans a, b, c)", f.Task.NInputs)
	}
	// Micro-program: 2 predicates (a<10, b>=5 over ports 0 and 1), then the
	// map mul over ports 2 (column c via its materialize) and 0 (column a),
	// then the aggregate op.
	want := []int64{
		2,
		0, int64(kernels.CmpLt), 10, 0,
		1, int64(kernels.CmpGe), 5, 0,
		kernels.FusedMapMul, 2, 0, 0,
		int64(kernels.AggSum),
	}
	if len(f.Task.Params) != len(want) {
		t.Fatalf("params = %v, want %v", f.Task.Params, want)
	}
	for i := range want {
		if f.Task.Params[i] != want[i] {
			t.Fatalf("params = %v, want %v", f.Task.Params, want)
		}
	}
	rs := fg.Results()
	if len(rs) != 1 || rs[0].Name != "sum" || rs[0].Ref.Node != f.ID {
		t.Errorf("results not remapped onto the fused node: %+v", rs)
	}
	ps, err := fg.BuildPipelines()
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 1 || len(ps[0].Scans) != 3 || len(ps[0].Nodes) != 1 {
		t.Errorf("fused pipelines: %d pipelines, %d scans, %d nodes", len(ps), len(ps[0].Scans), len(ps[0].Nodes))
	}
}

// TestFuseEstimatedRowsPreserved: fusion must not change the planner's
// input-cardinality estimates — the fused pipeline streams the same scans.
func TestFuseEstimatedRowsPreserved(t *testing.T) {
	g := buildQ6Like(t)
	before, err := g.BuildPipelines()
	if err != nil {
		t.Fatal(err)
	}
	fg := Fuse(g)
	after, err := fg.BuildPipelines()
	if err != nil {
		t.Fatal(err)
	}
	be, ae := EstimateRows(g, before), EstimateRows(fg, after)
	if len(be) != len(ae) {
		t.Fatalf("pipeline count changed: %d -> %d", len(be), len(ae))
	}
	for i := range be {
		if be[i] != ae[i] {
			t.Errorf("pipeline %d estimate %d -> %d", i, be[i], ae[i])
		}
	}
}

// TestFusePureRewrite: the input graph must come back untouched — same
// nodes, edges, and a still-valid unfused plan.
func TestFusePureRewrite(t *testing.T) {
	g := buildQ6Like(t)
	nodes, edges := len(g.Nodes()), len(g.Edges())
	_ = Fuse(g)
	if len(g.Nodes()) != nodes || len(g.Edges()) != edges {
		t.Fatalf("input graph mutated: %d nodes %d edges", len(g.Nodes()), len(g.Edges()))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if ps, err := g.BuildPipelines(); err != nil || len(ps) != 1 {
		t.Fatalf("original plan broken after Fuse: %v", err)
	}
}

// TestFuseBareMaterialize pins the Q3-pipeline-1 shape: a filtered
// materialize feeding a hash build fuses into FUSED_MATERIALIZE; the build
// stays, rewired onto the fused node.
func TestFuseBareMaterialize(t *testing.T) {
	g := New()
	seg := g.AddScan("c.seg", col(64), dev)
	key := g.AddScan("c.key", col(64), dev)
	f := g.AddTask(task.NewFilterBitmap(kernels.CmpEq, 2, 0, "seg=2"), dev, seg)
	m := g.AddTask(mustMaterialize(t), dev, key, g.Out(f, 0))
	b := g.AddTask(task.NewHashBuildSet(64, "set"), dev, g.Out(m, 0))
	g.MarkResult("set", g.Out(b, 0))

	fg := Fuse(g)
	if fg == g {
		t.Fatal("bare materialize chain did not fuse")
	}
	if err := fg.Validate(); err != nil {
		t.Fatal(err)
	}
	fn := fusedNodes(fg)
	if len(fn) != 1 || fn[0].Task.Kind != primitive.FusedMaterialize {
		t.Fatalf("fused nodes = %v", fn)
	}
	if got := fn[0].Task.Outputs[0].Type; got != vec.Int32 {
		t.Errorf("fused materialize output type = %v, want the chain's Int32", got)
	}
	// scans + fused mat + build = 4 nodes; filter and materialize are gone.
	if len(fg.Nodes()) != 4 {
		t.Fatalf("fused shape: %d nodes, want 4", len(fg.Nodes()))
	}
	var build *Node
	for _, n := range fg.Nodes() {
		if !n.IsScan() && n.Task.Kernel == "hash_build_set_i32" {
			build = n
		}
	}
	if build == nil {
		t.Fatal("hash build dropped")
	}
	if ins := build.Inputs(); len(ins) != 1 || ins[0].From != fn[0].ID {
		t.Errorf("hash build not rewired onto the fused node: %v", build.Inputs())
	}
}

// TestFusePredicateFreeMap: an aggregate over a map of raw scans (no
// filter at all) is still a fusible single pass with zero predicates.
func TestFusePredicateFreeMap(t *testing.T) {
	g := New()
	a := g.AddScan("t.a", col(64), dev)
	b := g.AddScan("t.b", col(64), dev)
	mul := g.AddTask(task.NewMapMul("a*b"), dev, a, b)
	agg := g.AddTask(mustAgg(t, kernels.AggSum), dev, g.Out(mul, 0))
	g.MarkResult("sum", g.Out(agg, 0))

	fg := Fuse(g)
	if fg == g {
		t.Fatal("predicate-free chain did not fuse")
	}
	fn := fusedNodes(fg)
	if len(fn) != 1 || fn[0].Task.Params[0] != 0 {
		t.Fatalf("fused with %v, want zero predicates", fn)
	}
	if err := fg.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestFuseComplementMapAndMinMax covers the Q6 revenue expression shape
// (price * (K - discount)) and the non-sum aggregate identities.
func TestFuseComplementMapAndMinMax(t *testing.T) {
	for _, op := range []kernels.AggOp{kernels.AggMin, kernels.AggMax} {
		g := New()
		a := g.AddScan("t.a", col(64), dev)
		b := g.AddScan("t.b", col(64), dev)
		f := g.AddTask(task.NewFilterBitmap(kernels.CmpLt, 9, 0, "a<9"), dev, a)
		m1 := g.AddTask(mustMaterialize(t), dev, a, g.Out(f, 0))
		m2 := g.AddTask(mustMaterialize(t), dev, b, g.Out(f, 0))
		mul := g.AddTask(task.NewMapMulComplement(100, "p*(100-d)"), dev, g.Out(m1, 0), g.Out(m2, 0))
		agg := g.AddTask(mustAgg(t, op), dev, g.Out(mul, 0))
		g.MarkResult("x", g.Out(agg, 0))

		fg := Fuse(g)
		fn := fusedNodes(fg)
		if len(fn) != 1 {
			t.Fatalf("%v: did not fuse", op)
		}
		p := fn[0].Task.Params
		// [1, pred(4), kind, A, B, K, op]
		if p[5] != kernels.FusedMapMulComp || p[8] != 100 || p[9] != int64(op) {
			t.Errorf("%v: params = %v", op, p)
		}
		if fn[0].Task.InitParams[0] == 0 {
			t.Errorf("%v: accumulator identity not set", op)
		}
	}
}

// TestFuseNonFusibleChains: every chain containing an operator outside the
// fused kernels' vocabulary must come back pointer-identical — the unfused
// path is the fallback.
func TestFuseNonFusibleChains(t *testing.T) {
	cases := []struct {
		name  string
		build func(t *testing.T) *Graph
	}{
		{"bitmap_or", func(t *testing.T) *Graph {
			g := New()
			a := g.AddScan("t.a", col(64), dev)
			fa := g.AddTask(task.NewFilterBitmap(kernels.CmpLt, 10, 0, "a<10"), dev, a)
			fb := g.AddTask(task.NewFilterBitmap(kernels.CmpGe, 50, 0, "a>=50"), dev, a)
			or := g.AddTask(task.NewBitmapOr(), dev, g.Out(fa, 0), g.Out(fb, 0))
			m := g.AddTask(mustMaterialize(t), dev, a, g.Out(or, 0))
			agg := g.AddTask(mustAgg(t, kernels.AggSum), dev, g.Out(m, 0))
			g.MarkResult("sum", g.Out(agg, 0))
			return g
		}},
		{"bitmap_not", func(t *testing.T) *Graph {
			g := New()
			a := g.AddScan("t.a", col(64), dev)
			f := g.AddTask(task.NewFilterBitmap(kernels.CmpLt, 10, 0, "a<10"), dev, a)
			not := g.AddTask(task.NewBitmapNot(), dev, g.Out(f, 0))
			m := g.AddTask(mustMaterialize(t), dev, a, g.Out(not, 0))
			agg := g.AddTask(mustAgg(t, kernels.AggSum), dev, g.Out(m, 0))
			g.MarkResult("sum", g.Out(agg, 0))
			return g
		}},
		{"column_column_filter", func(t *testing.T) *Graph {
			g := New()
			a := g.AddScan("t.a", col(64), dev)
			b := g.AddScan("t.b", col(64), dev)
			f := g.AddTask(task.NewFilterColCmp(kernels.CmpLt, "a<b"), dev, a, b)
			m := g.AddTask(mustMaterialize(t), dev, a, g.Out(f, 0))
			agg := g.AddTask(mustAgg(t, kernels.AggSum), dev, g.Out(m, 0))
			g.MarkResult("sum", g.Out(agg, 0))
			return g
		}},
		{"semi_join_filter", func(t *testing.T) *Graph {
			g := New()
			bk := g.AddScan("b.key", col(64), dev)
			build := g.AddTask(task.NewHashBuildSet(64, "set"), dev, bk)
			pk := g.AddScan("p.key", col(128), dev)
			semi := g.AddTask(task.NewSemiJoinFilter("in set"), dev, pk, g.Out(build, 0))
			m := g.AddTask(mustMaterialize(t), dev, pk, g.Out(semi, 0))
			agg := g.AddTask(mustAgg(t, kernels.AggSum), dev, g.Out(m, 0))
			g.MarkResult("sum", g.Out(agg, 0))
			return g
		}},
		{"count_bits_terminal", func(t *testing.T) *Graph {
			g := New()
			a := g.AddScan("t.a", col(64), dev)
			f := g.AddTask(task.NewFilterBitmap(kernels.CmpLt, 10, 0, "a<10"), dev, a)
			cnt := g.AddTask(task.NewAggCountBits("count"), dev, g.Out(f, 0))
			g.MarkResult("count", g.Out(cnt, 0))
			return g
		}},
		{"position_list_path", func(t *testing.T) *Graph {
			g := New()
			a := g.AddScan("t.a", col(64), dev)
			f := g.AddTask(task.NewFilterPosition(kernels.CmpLt, 10, 0, 0.5, "a<10"), dev, a)
			mp, err := task.NewMaterializePosition(vec.Int32, "mp")
			if err != nil {
				t.Fatal(err)
			}
			m := g.AddTask(mp, dev, a, g.Out(f, 0))
			agg := g.AddTask(mustAgg(t, kernels.AggSum), dev, g.Out(m, 0))
			g.MarkResult("sum", g.Out(agg, 0))
			return g
		}},
		{"cross_device_scan", func(t *testing.T) *Graph {
			g := New()
			a := g.AddScan("t.a", col(64), dev2) // scan on another device
			f := g.AddTask(task.NewFilterBitmap(kernels.CmpLt, 10, 0, "a<10"), dev, a)
			m := g.AddTask(mustMaterialize(t), dev, a, g.Out(f, 0))
			agg := g.AddTask(mustAgg(t, kernels.AggSum), dev, g.Out(m, 0))
			g.MarkResult("sum", g.Out(agg, 0))
			return g
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := tc.build(t)
			if err := g.Validate(); err != nil {
				t.Fatal(err)
			}
			if fg := Fuse(g); fg != g {
				t.Errorf("non-fusible graph was rewritten: %d -> %d nodes", len(g.Nodes()), len(fg.Nodes()))
			}
		})
	}
}

// TestFuseAggRefusedMatStillFuses: aggregate chains whose map operands
// cannot be re-evaluated in one pass (mixed filtered/unfiltered operands, or
// materializes over different bitmaps) keep the unfused map and aggregate —
// but each inner filtered materialize still fuses on its own, collapsing its
// filter+materialize into one pass.
func TestFuseAggRefusedMatStillFuses(t *testing.T) {
	t.Run("mixed_map_operands", func(t *testing.T) {
		// One operand filtered through a materialize, one raw scan: the
		// lengths differ, so the whole chain has no single-pass form.
		g := New()
		a := g.AddScan("t.a", col(64), dev)
		b := g.AddScan("t.b", col(64), dev)
		f := g.AddTask(task.NewFilterBitmap(kernels.CmpLt, 10, 0, "a<10"), dev, a)
		m := g.AddTask(mustMaterialize(t), dev, a, g.Out(f, 0))
		mul := g.AddTask(task.NewMapMul("m*b"), dev, g.Out(m, 0), b)
		agg := g.AddTask(mustAgg(t, kernels.AggSum), dev, g.Out(mul, 0))
		g.MarkResult("sum", g.Out(agg, 0))

		fg := Fuse(g)
		if fg == g {
			t.Fatal("inner materialize should have fused")
		}
		if err := fg.Validate(); err != nil {
			t.Fatal(err)
		}
		fn := fusedNodes(fg)
		if len(fn) != 1 || fn[0].Task.Kind != primitive.FusedMaterialize {
			t.Fatalf("fused nodes = %v, want one FUSED_MATERIALIZE", fn)
		}
		seen := map[string]int{}
		for _, n := range fg.Nodes() {
			if !n.IsScan() {
				seen[n.Task.Kernel]++
			}
		}
		if seen["map_mul_i32_i64"] != 1 || seen["agg_block_i64"] != 1 || seen["filter_bitmap_i32"] != 0 {
			t.Errorf("kept set wrong: %v", seen)
		}
	})
	t.Run("split_bitmap_sources", func(t *testing.T) {
		// Two materializes over two different bitmaps: no shared predicate
		// set for an aggregate pass, but two independent materialize fusions.
		g := New()
		a := g.AddScan("t.a", col(64), dev)
		b := g.AddScan("t.b", col(64), dev)
		fa := g.AddTask(task.NewFilterBitmap(kernels.CmpLt, 10, 0, "a<10"), dev, a)
		fb := g.AddTask(task.NewFilterBitmap(kernels.CmpGe, 5, 0, "b>=5"), dev, b)
		m1 := g.AddTask(mustMaterialize(t), dev, a, g.Out(fa, 0))
		m2 := g.AddTask(mustMaterialize(t), dev, b, g.Out(fb, 0))
		mul := g.AddTask(task.NewMapMul("x*y"), dev, g.Out(m1, 0), g.Out(m2, 0))
		agg := g.AddTask(mustAgg(t, kernels.AggSum), dev, g.Out(mul, 0))
		g.MarkResult("sum", g.Out(agg, 0))

		fg := Fuse(g)
		fn := fusedNodes(fg)
		if len(fn) != 2 {
			t.Fatalf("got %d fused nodes, want 2 independent fused materializes", len(fn))
		}
		for _, n := range fn {
			if n.Task.Kind != primitive.FusedMaterialize {
				t.Errorf("fused node %v is not a materialize", n)
			}
		}
		if err := fg.Validate(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestFusePartialChainSplit: when a chain-internal bitmap is also consumed
// by a non-fusible operator, the aggregate still fuses and the bitmap path
// stays alive for the other consumer — partial fusion, not all-or-nothing.
func TestFusePartialChainSplit(t *testing.T) {
	g := buildQ6Like(t)
	// buildQ6Like's AND node is node 4 (scans 0-2, filters 3-4... locate it
	// by kernel instead of relying on IDs).
	var and NodeID = -1
	for _, n := range g.Nodes() {
		if !n.IsScan() && n.Task.Kernel == "bitmap_and" {
			and = n.ID
		}
	}
	if and < 0 {
		t.Fatal("no AND node in the Q6 shape")
	}
	cnt := g.AddTask(task.NewAggCountBits("count"), dev, g.Out(and, 0))
	g.MarkResult("count", g.Out(cnt, 0))

	fg := Fuse(g)
	if fg == g {
		t.Fatal("partially-consumed chain did not fuse")
	}
	if err := fg.Validate(); err != nil {
		t.Fatal(err)
	}
	// Kept: 3 scans, 2 filters, AND, count, fused agg. Dropped: both
	// materializes and the map.
	if len(fg.Nodes()) != 8 {
		t.Fatalf("fused shape: %d nodes, want 8", len(fg.Nodes()))
	}
	kernelsSeen := map[string]int{}
	for _, n := range fg.Nodes() {
		if !n.IsScan() {
			kernelsSeen[n.Task.Kernel]++
		}
	}
	if kernelsSeen["materialize_bitmap_i32"] != 0 || kernelsSeen["map_mul_i32_i64"] != 0 {
		t.Errorf("chain intermediates survived: %v", kernelsSeen)
	}
	if kernelsSeen["bitmap_and"] != 1 || kernelsSeen["agg_count_bits"] != 1 || kernelsSeen["fused_filter_agg"] != 1 {
		t.Errorf("kept set wrong: %v", kernelsSeen)
	}
	if _, err := fg.BuildPipelines(); err != nil {
		t.Fatal(err)
	}
}

// TestFuseResultMarkedIntermediate: a result-marked materialize inside an
// aggregate chain both stays alive and fuses on its own.
func TestFuseResultMarkedIntermediate(t *testing.T) {
	g := New()
	a := g.AddScan("t.a", col(640), dev)
	b := g.AddScan("t.b", col(640), dev)
	c := g.AddScan("t.c", col(640), dev)
	fa := g.AddTask(task.NewFilterBitmap(kernels.CmpLt, 10, 0, "a<10"), dev, a)
	fb := g.AddTask(task.NewFilterBitmap(kernels.CmpGe, 5, 0, "b>=5"), dev, b)
	and := g.AddTask(task.NewBitmapAnd(), dev, g.Out(fa, 0), g.Out(fb, 0))
	m1 := g.AddTask(mustMaterialize(t), dev, c, g.Out(and, 0))
	m2 := g.AddTask(mustMaterialize(t), dev, a, g.Out(and, 0))
	mul := g.AddTask(task.NewMapMul("x*y"), dev, g.Out(m1, 0), g.Out(m2, 0))
	agg := g.AddTask(mustAgg(t, kernels.AggSum), dev, g.Out(mul, 0))
	g.MarkResult("sum", g.Out(agg, 0))
	g.MarkResult("survivors", g.Out(m1, 0))

	fg := Fuse(g)
	if fg == g {
		t.Fatal("did not fuse")
	}
	if err := fg.Validate(); err != nil {
		t.Fatal(err)
	}
	fn := fusedNodes(fg)
	if len(fn) != 2 {
		t.Fatalf("got %d fused nodes, want a fused aggregate and a fused materialize", len(fn))
	}
	// 3 scans + fused materialize + fused aggregate; filters, AND, the
	// other materialize and the map are all absorbed.
	if len(fg.Nodes()) != 5 {
		t.Fatalf("fused shape: %d nodes, want 5", len(fg.Nodes()))
	}
	if len(fg.Results()) != 2 {
		t.Fatalf("results lost: %v", fg.Results())
	}
	if _, err := fg.BuildPipelines(); err != nil {
		t.Fatal(err)
	}
}

// TestFuseDropsOrphanScan: a scan whose only role was feeding the unfused
// plan's intermediates must not survive as a consumer-less scan (which
// BuildPipelines rejects).
func TestFuseDropsOrphanScan(t *testing.T) {
	g := buildQ6Like(t)
	g.AddScan("t.unused", col(640), dev)
	if _, err := g.BuildPipelines(); err == nil {
		t.Fatal("unfused plan with orphan scan should not build")
	}
	fg := Fuse(g)
	if fg == g {
		t.Fatal("did not fuse")
	}
	for _, n := range fg.Nodes() {
		if n.IsScan() && n.Scan.Name == "t.unused" {
			t.Fatal("orphan scan survived fusion")
		}
	}
	if _, err := fg.BuildPipelines(); err != nil {
		t.Fatal(err)
	}
}

// TestFuseDegenerateInputs: nil and invalid graphs pass through untouched.
func TestFuseDegenerateInputs(t *testing.T) {
	if Fuse(nil) != nil {
		t.Error("nil graph")
	}
	empty := New()
	if Fuse(empty) != empty {
		t.Error("invalid graph must come back unchanged")
	}
	// Valid but with nothing to fuse: a bare filter.
	g := New()
	a := g.AddScan("t.a", col(64), dev)
	f := g.AddTask(task.NewFilterBitmap(kernels.CmpLt, 10, 0, "a<10"), dev, a)
	g.MarkResult("f", g.Out(f, 0))
	if Fuse(g) != g {
		t.Error("fusion-free graph must come back pointer-identical")
	}
}
