package graph

import (
	"errors"
	"testing"

	"github.com/adamant-db/adamant/internal/device"
	"github.com/adamant-db/adamant/internal/kernels"
	"github.com/adamant-db/adamant/internal/task"
	"github.com/adamant-db/adamant/internal/vec"
)

const dev = device.ID(0)

func col(n int) vec.Vector { return vec.New(vec.Int32, n) }

func mustMaterialize(t *testing.T) *task.Task {
	t.Helper()
	m, err := task.NewMaterialize(vec.Int32, "m")
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// buildQ6Like constructs the Q6 shape: three filters over one table, two
// ANDs, two materializations, a map, and an aggregate.
func buildQ6Like(t *testing.T) *Graph {
	t.Helper()
	g := New()
	a := g.AddScan("t.a", col(640), dev)
	b := g.AddScan("t.b", col(640), dev)
	c := g.AddScan("t.c", col(640), dev)

	fa := g.AddTask(task.NewFilterBitmap(kernels.CmpLt, 10, 0, "a<10"), dev, a)
	fb := g.AddTask(task.NewFilterBitmap(kernels.CmpGe, 5, 0, "b>=5"), dev, b)
	and := g.AddTask(task.NewBitmapAnd(), dev, g.Out(fa, 0), g.Out(fb, 0))
	m1 := g.AddTask(mustMaterialize(t), dev, c, g.Out(and, 0))
	m2 := g.AddTask(mustMaterialize(t), dev, a, g.Out(and, 0))
	mul := g.AddTask(task.NewMapMul("x*y"), dev, g.Out(m1, 0), g.Out(m2, 0))
	aggT, err := task.NewAggBlock(kernels.AggSum, vec.Int64, "sum")
	if err != nil {
		t.Fatal(err)
	}
	agg := g.AddTask(aggT, dev, g.Out(mul, 0))
	g.MarkResult("sum", g.Out(agg, 0))
	return g
}

func TestValidateHappyPath(t *testing.T) {
	g := buildQ6Like(t)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(g.Nodes()) != 10 || len(g.Edges()) != 11 {
		t.Errorf("graph shape: %d nodes, %d edges", len(g.Nodes()), len(g.Edges()))
	}
}

func TestSinglePipelineForParallelFilters(t *testing.T) {
	g := buildQ6Like(t)
	ps, err := g.BuildPipelines()
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 1 {
		t.Fatalf("got %d pipelines, want 1 (parallel filter branches must merge)", len(ps))
	}
	if len(ps[0].Scans) != 3 || len(ps[0].Nodes) != 7 {
		t.Errorf("pipeline shape: %d scans, %d nodes", len(ps[0].Scans), len(ps[0].Nodes))
	}
	if ps[0].ScanRows(g) != 640 {
		t.Errorf("scan rows = %d", ps[0].ScanRows(g))
	}
}

// TestBreakerSplitsPipelines wires a build pipeline into a probe pipeline.
func TestBreakerSplitsPipelines(t *testing.T) {
	g := New()
	bk := g.AddScan("b.key", col(64), dev)
	build := g.AddTask(task.NewHashBuildSet(64, "set"), dev, bk)

	pk := g.AddScan("p.key", col(128), dev)
	semi := g.AddTask(task.NewSemiJoinFilter("in set"), dev, pk, g.Out(build, 0))
	cnt := g.AddTask(task.NewAggCountBits("count"), dev, g.Out(semi, 0))
	g.MarkResult("count", g.Out(cnt, 0))

	ps, err := g.BuildPipelines()
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2 {
		t.Fatalf("got %d pipelines, want 2", len(ps))
	}
	if len(ps[1].DependsOn) != 1 || ps[1].DependsOn[0] != 0 {
		t.Errorf("probe pipeline deps = %v", ps[1].DependsOn)
	}
	if ps[0].ScanRows(g) != 64 || ps[1].ScanRows(g) != 128 {
		t.Error("pipelines bound to wrong scans")
	}
}

func TestScanSharedBuildProbeRejected(t *testing.T) {
	g := New()
	s := g.AddScan("t.k", col(64), dev)
	build := g.AddTask(task.NewHashBuildSet(64, "set"), dev, s)
	// The probe reads the same scan node: the scan binds both sides into
	// one pipeline, which would consume the breaker within itself. Plans
	// must add a second scan for the probe pass.
	g.AddTask(task.NewSemiJoinFilter("probe"), dev, s, g.Out(build, 0))
	if _, err := g.BuildPipelines(); !errors.Is(err, ErrBadGraph) {
		t.Errorf("shared build/probe scan: %v", err)
	}
}

func TestMismatchedScanLengthsRejected(t *testing.T) {
	g := New()
	a := g.AddScan("t.a", col(100), dev)
	b := g.AddScan("t.b", col(200), dev)
	g.AddTask(task.NewFilterColCmp(kernels.CmpLt, "cmp"), dev, a, b)
	if _, err := g.BuildPipelines(); !errors.Is(err, ErrBadGraph) {
		t.Errorf("mismatched scans: %v", err)
	}
}

func TestOrphanScanRejected(t *testing.T) {
	g := New()
	g.AddScan("t.a", col(64), dev)
	s := g.AddScan("t.b", col(64), dev)
	f := g.AddTask(task.NewFilterBitmap(kernels.CmpLt, 1, 0, "f"), dev, s)
	g.MarkResult("f", g.Out(f, 0))
	if _, err := g.BuildPipelines(); !errors.Is(err, ErrBadGraph) {
		t.Errorf("orphan scan: %v", err)
	}
}

func TestSemanticMismatchRejected(t *testing.T) {
	g := New()
	s := g.AddScan("t.a", col(64), dev)
	// Materialize wants (NUMERIC, BITMAP) but gets (NUMERIC, NUMERIC).
	g.AddTask(mustMaterialize(t), dev, s, s)
	if err := g.Validate(); !errors.Is(err, ErrBadGraph) {
		t.Errorf("semantic mismatch: %v", err)
	}
}

func TestConstructionErrors(t *testing.T) {
	g := New()
	if err := g.Validate(); !errors.Is(err, ErrBadGraph) {
		t.Errorf("empty graph: %v", err)
	}

	g = New()
	s := g.AddScan("t.a", col(4), dev)
	// Wrong input arity.
	g.AddTask(task.NewBitmapAnd(), dev, s)
	if err := g.Validate(); !errors.Is(err, ErrBadGraph) {
		t.Errorf("arity: %v", err)
	}

	g = New()
	g.AddTask(nil, dev)
	if err := g.Validate(); !errors.Is(err, ErrBadGraph) {
		t.Errorf("nil task: %v", err)
	}

	g = New()
	s = g.AddScan("t.a", col(4), dev)
	f := g.AddTask(task.NewFilterBitmap(kernels.CmpLt, 1, 0, "f"), dev, s)
	// Nonexistent output port.
	g.AddTask(task.NewBitmapAnd(), dev, g.Out(f, 5), g.Out(f, 0))
	if err := g.Validate(); !errors.Is(err, ErrBadGraph) {
		t.Errorf("bad port: %v", err)
	}
}

func TestResultValidation(t *testing.T) {
	g := New()
	s := g.AddScan("t.a", col(4), dev)
	f := g.AddTask(task.NewFilterBitmap(kernels.CmpLt, 1, 0, "f"), dev, s)
	g.MarkResult("bad", PortRef{Node: f, Port: 9})
	if err := g.Validate(); !errors.Is(err, ErrBadGraph) {
		t.Errorf("bad result port: %v", err)
	}
}

func TestUnboundScanRejected(t *testing.T) {
	g := New()
	g.AddScan("t.a", vec.Vector{}, dev)
	if err := g.Validate(); !errors.Is(err, ErrBadGraph) {
		t.Errorf("unbound scan: %v", err)
	}
}

func TestBreakerConsumedInOwnPipelineRejected(t *testing.T) {
	g := New()
	s := g.AddScan("t.k", col(64), dev)
	f := g.AddTask(task.NewFilterBitmap(kernels.CmpLt, 100, 0, "f"), dev, s)
	agg := g.AddTask(task.NewAggCountBits("count"), dev, g.Out(f, 0))
	// The AND consumes both the filter (same region) and the breaker's
	// output, pulling the breaker edge inside its own pipeline.
	g.AddTask(task.NewBitmapAnd(), dev, g.Out(f, 0), g.Out(agg, 0))
	if _, err := g.BuildPipelines(); !errors.Is(err, ErrBadGraph) {
		t.Errorf("self-pipeline breaker: %v", err)
	}
}

func TestNodeDiagnostics(t *testing.T) {
	g := buildQ6Like(t)
	for _, n := range g.Nodes() {
		if n.String() == "" {
			t.Error("node without diagnostics")
		}
	}
	for _, e := range g.Edges() {
		if e.String() == "" {
			t.Error("edge without diagnostics")
		}
	}
}
