package graph

import (
	"fmt"
	"io"
)

// EstimateRows returns the planner's input-cardinality estimate for every
// pipeline. Scan-fed pipelines stream exactly their scan rows. A pipeline
// fed only by intermediate results (ScanRows 0 — e.g. a probe over a
// device-resident hash table) is estimated from its producers: each
// incoming breaker output applies its size rule to the producing pipeline's
// estimate, and the maximum across inputs wins. Pipelines come back in
// execution order, so producer estimates are always computed first.
func EstimateRows(g *Graph, pipelines []*Pipeline) []int {
	est := make([]int, len(pipelines))
	pipeOf := make(map[NodeID]int)
	for _, p := range pipelines {
		for _, nid := range p.Nodes {
			pipeOf[nid] = p.Index
		}
	}
	for _, p := range pipelines {
		if rows := p.ScanRows(g); rows > 0 {
			est[p.Index] = rows
			continue
		}
		for _, nid := range p.Nodes {
			for _, e := range g.Node(nid).Inputs() {
				src := g.Node(e.From)
				if src.IsScan() || pipeOf[e.From] == p.Index {
					continue
				}
				n := src.OutputSpec(e.FromPort).Size.Elements(est[pipeOf[e.From]])
				if n > est[p.Index] {
					est[p.Index] = n
				}
			}
		}
	}
	return est
}

// WriteExplain renders the pipeline plan as text: each pipeline with its
// dependencies and row count (exact for scan-fed pipelines, the planner's
// estimate for pipelines fed by intermediate results), its streamed scans,
// and its primitives in execution order with breakers marked by the
// paper's dagger. indent prefixes every line.
func WriteExplain(w io.Writer, g *Graph, pipelines []*Pipeline, indent string) {
	est := EstimateRows(g, pipelines)
	for _, pl := range pipelines {
		fmt.Fprintf(w, "%spipeline %d", indent, pl.Index)
		if len(pl.DependsOn) > 0 {
			fmt.Fprintf(w, " (after %v)", pl.DependsOn)
		}
		if rows := pl.ScanRows(g); rows > 0 {
			fmt.Fprintf(w, " — %d rows", rows)
		} else if est[pl.Index] > 0 {
			fmt.Fprintf(w, " — ~%d rows (estimated)", est[pl.Index])
		}
		fmt.Fprintln(w)
		for _, sid := range pl.Scans {
			fmt.Fprintf(w, "%s  scan %s\n", indent, g.Node(sid).Scan.Name)
		}
		for _, nid := range pl.Nodes {
			n := g.Node(nid)
			dagger := ""
			if n.Breaker() {
				dagger = " †"
			}
			fmt.Fprintf(w, "%s  %s%s\n", indent, n.Task, dagger)
		}
	}
}
