// Package graph implements ADAMANT's primitive graph: the runtime-layer
// representation of a query execution plan (§III-C of the paper).
//
// Nodes are primitives (tasks) annotated with their target device; edges
// are the data flow between them, typed with the I/O semantics of §III-B3.
// Scan nodes bind host-resident columns as pipeline inputs. The graph
// splits itself into query pipelines at pipeline breakers (Table I), which
// is the unit the execution models process chunk-wise (§IV).
package graph

import (
	"errors"
	"fmt"

	"github.com/adamant-db/adamant/internal/device"
	"github.com/adamant-db/adamant/internal/primitive"
	"github.com/adamant-db/adamant/internal/task"
	"github.com/adamant-db/adamant/internal/vec"
)

// Graph errors.
var (
	ErrBadGraph = errors.New("graph: invalid primitive graph")
)

// NodeID indexes a node within its graph.
type NodeID int

// PortRef names one output port of one node.
type PortRef struct {
	Node NodeID
	Port int
}

// ScanSpec binds a host column as a pipeline input.
type ScanSpec struct {
	// Name identifies the column, e.g. "lineitem.l_shipdate".
	Name string
	// Data is the bound host vector.
	Data vec.Vector
}

// Node is one primitive in the plan: either a Scan (Task nil, Scan set) or
// a task annotated with its target device.
type Node struct {
	ID     NodeID
	Task   *task.Task
	Scan   *ScanSpec
	Device device.ID

	// in[p] is the edge feeding input port p; out[p] lists the edges
	// leaving output port p.
	in  []*Edge
	out [][]*Edge
}

// IsScan reports whether the node is a pipeline input.
func (n *Node) IsScan() bool { return n.Scan != nil }

// Breaker reports whether the node's primitive is a pipeline breaker.
func (n *Node) Breaker() bool { return n.Task != nil && n.Task.Kind.Breaker() }

// Inputs returns the edges feeding the node, in port order.
func (n *Node) Inputs() []*Edge { return n.in }

// Outputs returns the edges leaving output port p.
func (n *Node) Outputs(p int) []*Edge {
	if p >= len(n.out) {
		return nil
	}
	return n.out[p]
}

// NumOutputs reports the node's output port count.
func (n *Node) NumOutputs() int {
	if n.IsScan() {
		return 1
	}
	return len(n.Task.Outputs)
}

// OutputSpec returns the shape of output port p.
func (n *Node) OutputSpec(p int) task.OutputSpec {
	if n.IsScan() {
		return task.OutputSpec{Semantic: primitive.Numeric, Type: n.Scan.Data.Type(), Size: task.OfInput()}
	}
	return n.Task.Outputs[p]
}

// String names the node for diagnostics.
func (n *Node) String() string {
	if n.IsScan() {
		return fmt.Sprintf("n%d:scan(%s)", n.ID, n.Scan.Name)
	}
	return fmt.Sprintf("n%d:%s", n.ID, n.Task)
}

// Edge is one data dependency. The runtime annotates edges with transfer
// state (data ID, device ID, processed-until, fetched-until) during
// execution; the graph itself stays immutable and reusable across runs.
type Edge struct {
	ID       int
	From     NodeID
	FromPort int
	To       NodeID
	ToPort   int
	Semantic primitive.Semantic
	Type     vec.Type
}

func (e *Edge) String() string {
	return fmt.Sprintf("e%d(n%d.%d->n%d.%d %s)", e.ID, e.From, e.FromPort, e.To, e.ToPort, e.Semantic)
}

// Graph is a primitive graph under construction or ready for execution.
type Graph struct {
	nodes   []*Node
	edges   []*Edge
	results []Result
	err     error // first construction error, surfaced by Validate
}

// New returns an empty graph.
func New() *Graph { return &Graph{} }

// AddScan adds a pipeline input bound to a host column, placed on the given
// device, and returns its output port.
func (g *Graph) AddScan(name string, data vec.Vector, dev device.ID) PortRef {
	n := &Node{
		ID:     NodeID(len(g.nodes)),
		Scan:   &ScanSpec{Name: name, Data: data},
		Device: dev,
		out:    make([][]*Edge, 1),
	}
	g.nodes = append(g.nodes, n)
	return PortRef{Node: n.ID, Port: 0}
}

// AddTask adds a primitive node executing t on the given device, wired to
// the given input ports, and returns the node's ID. Input edges inherit the
// semantic and type of the upstream port. Construction errors are deferred
// to Validate so plans can be built fluently.
func (g *Graph) AddTask(t *task.Task, dev device.ID, inputs ...PortRef) NodeID {
	n := &Node{
		ID:     NodeID(len(g.nodes)),
		Task:   t,
		Device: dev,
	}
	if t != nil {
		n.out = make([][]*Edge, len(t.Outputs))
	}
	g.nodes = append(g.nodes, n)

	if t == nil {
		g.fail(fmt.Errorf("%w: nil task for node %d", ErrBadGraph, n.ID))
		return n.ID
	}
	if len(inputs) != t.NInputs {
		g.fail(fmt.Errorf("%w: %s declares %d inputs, wired %d", ErrBadGraph, t, t.NInputs, len(inputs)))
		return n.ID
	}
	for port, src := range inputs {
		if int(src.Node) >= len(g.nodes) || src.Node == n.ID {
			g.fail(fmt.Errorf("%w: node %d wires unknown source %d", ErrBadGraph, n.ID, src.Node))
			return n.ID
		}
		sn := g.nodes[src.Node]
		if src.Port >= sn.NumOutputs() {
			g.fail(fmt.Errorf("%w: %s has no output port %d", ErrBadGraph, sn, src.Port))
			return n.ID
		}
		spec := sn.OutputSpec(src.Port)
		e := &Edge{
			ID:       len(g.edges),
			From:     src.Node,
			FromPort: src.Port,
			To:       n.ID,
			ToPort:   port,
			Semantic: spec.Semantic,
			Type:     spec.Type,
		}
		g.edges = append(g.edges, e)
		sn.out[src.Port] = append(sn.out[src.Port], e)
		n.in = append(n.in, e)
	}
	return n.ID
}

// Out returns a port reference for a node added with AddTask.
func (g *Graph) Out(n NodeID, port int) PortRef { return PortRef{Node: n, Port: port} }

// Result names an output port whose contents are a query result. An AVG
// result pairs two ports: Ref carries the SUM partial and Count the COUNT
// partial, and retrieval finalizes the division into one Float64 scalar —
// the split that lets sharded execution merge raw partials before
// finalizing.
type Result struct {
	Name string
	Ref  PortRef
	// Avg marks a SUM+COUNT average; Count is the COUNT partial's port.
	Avg   bool
	Count PortRef
}

// MarkResult flags an output port as a named query result: the execution
// models retrieve it to the host when the query completes (accumulators)
// or concatenate it chunk by chunk (per-chunk outputs).
func (g *Graph) MarkResult(name string, ref PortRef) {
	g.results = append(g.results, Result{Name: name, Ref: ref})
}

// MarkResultAvg flags an AVG query result computed as SUM+COUNT: sum and
// count are AGG_BLOCK partial ports, and the retrieved column is one
// Float64 value sum/count (0 when the count is 0). Keeping the division out
// of the plan means per-shard partials stay mergeable.
func (g *Graph) MarkResultAvg(name string, sum, count PortRef) {
	g.results = append(g.results, Result{Name: name, Ref: sum, Avg: true, Count: count})
}

// Results lists the marked result ports.
func (g *Graph) Results() []Result { return g.results }

// Nodes returns the nodes in insertion (topological) order.
func (g *Graph) Nodes() []*Node { return g.nodes }

// Node resolves an ID.
func (g *Graph) Node(id NodeID) *Node { return g.nodes[id] }

// Edges returns all edges.
func (g *Graph) Edges() []*Edge { return g.edges }

func (g *Graph) fail(err error) {
	if g.err == nil {
		g.err = err
	}
}

// Validate checks the graph: construction errors, task definitions, edge
// semantics against the primitive signatures, and result ports.
func (g *Graph) Validate() error {
	if g.err != nil {
		return g.err
	}
	if len(g.nodes) == 0 {
		return fmt.Errorf("%w: empty graph", ErrBadGraph)
	}
	for _, n := range g.nodes {
		if n.IsScan() {
			if !n.Scan.Data.Valid() {
				return fmt.Errorf("%w: %s has no bound data", ErrBadGraph, n)
			}
			continue
		}
		if err := n.Task.Validate(); err != nil {
			return fmt.Errorf("%s: %w", n, err)
		}
		sig, err := primitive.SignatureOf(n.Task.Kind)
		if err != nil {
			return fmt.Errorf("%s: %w", n, err)
		}
		for _, e := range n.in {
			if !sig.AcceptsInput(e.ToPort, e.Semantic) {
				return fmt.Errorf("%w: %s input %d rejects %s edge %s",
					ErrBadGraph, n, e.ToPort, e.Semantic, e)
			}
		}
	}
	for _, r := range g.results {
		refs := []PortRef{r.Ref}
		if r.Avg {
			refs = append(refs, r.Count)
		}
		for _, ref := range refs {
			if int(ref.Node) >= len(g.nodes) {
				return fmt.Errorf("%w: result %q references unknown node %d", ErrBadGraph, r.Name, ref.Node)
			}
			if ref.Port >= g.nodes[ref.Node].NumOutputs() {
				return fmt.Errorf("%w: result %q references missing port %d of %s", ErrBadGraph, r.Name, ref.Port, g.nodes[ref.Node])
			}
		}
	}
	return nil
}
