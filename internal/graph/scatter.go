// Scatter/gather planning for sharded execution.
//
// A scattered query runs the same primitive graph on N shards, each bound
// to a contiguous row range of the partitioned base table, and merges the
// per-shard results at the coordinator. The planner's job is to decide
// statically — before anything runs — whether that rewrite is exact: every
// merge must reproduce the unsharded answer bit for bit, or the planner
// declines and the coordinator falls back to single-shard execution. There
// is no "approximately sharded" mode; a plan either scatters exactly or
// not at all.
package graph

import (
	"fmt"
	"sort"

	"github.com/adamant-db/adamant/internal/kernels"
	"github.com/adamant-db/adamant/internal/primitive"
	"github.com/adamant-db/adamant/internal/vec"
)

// MergeKind says how the coordinator folds one result's per-shard columns
// back into the unsharded answer.
type MergeKind uint8

// Merge kinds.
const (
	// MergeFirst takes the column from the first surviving shard: the
	// result depends only on broadcast (replicated) inputs, so every shard
	// computed the identical value.
	MergeFirst MergeKind = iota
	// MergeConcat concatenates shard columns in partition order: the
	// result is row-aligned with the partitioned table, so shard order is
	// global row order.
	MergeConcat
	// MergeAgg folds per-shard scalar partials with the aggregate's Merge
	// (SUM/COUNT partials add, MIN/MAX take the extremum).
	MergeAgg
	// MergeGroup k-way-merges per-shard sorted (key, value) group lists,
	// folding values of equal keys with the aggregate's Merge. Shard lists
	// are sorted with distinct keys (hash_extract sorts), so the merged
	// list is exactly the unsharded extract.
	MergeGroup
	// MergeAvg folds raw SUM and COUNT partials across shards, then
	// finalizes the division — the reason AVG is planned as SUM+COUNT.
	MergeAvg
)

// String names the merge kind for diagnostics and trace labels.
func (k MergeKind) String() string {
	switch k {
	case MergeFirst:
		return "first"
	case MergeConcat:
		return "concat"
	case MergeAgg:
		return "agg"
	case MergeGroup:
		return "group"
	case MergeAvg:
		return "avg"
	default:
		return fmt.Sprintf("merge(%d)", int(k))
	}
}

// MergeSpec tells the coordinator how to gather one original result from
// the per-shard result sets. Column names refer to the shard result sets
// (synthetic "__scatter." names are added for ports the original plan did
// not mark).
type MergeSpec struct {
	// Name is the original result's name.
	Name string
	// Kind selects the fold.
	Kind MergeKind
	// Op folds partials for MergeAgg and MergeGroup, and the SUM partial
	// of MergeAvg.
	Op kernels.AggOp
	// Keys and Vals name the shard-result columns of a MergeGroup pair
	// (the extract's key and aggregate ports); Port says which of the two
	// this result reports (0 = keys, 1 = aggregates).
	Keys, Vals string
	Port       int
	// Sum, Count and CountOp describe a MergeAvg result's raw partials.
	Sum, Count string
	CountOp    kernels.AggOp
}

// ScatterSpec is a validated scatter/gather plan for one graph.
type ScatterSpec struct {
	// PartRows is the row count of the partitioned scans; shard boundaries
	// partition [0, PartRows).
	PartRows int
	// PartScans lists the partitioned scan nodes (every scan of length
	// PartRows); all other scans are broadcast to every shard.
	PartScans []NodeID
	// Merges holds one gather rule per original result, in result order.
	Merges []MergeSpec

	src          *Graph
	partitioned  map[NodeID]bool
	shardResults []Result
}

// portClass tracks how a port's contents relate across shards during
// classification.
type portClass uint8

const (
	// clBroadcast: identical on every shard (derived only from replicated
	// scans).
	clBroadcast portClass = iota
	// clPart: row-aligned with the shard's partition of the base table.
	clPart
	// clPartialScalar: a scalar aggregate over partitioned rows — a
	// partial that must be merged, never consumed downstream.
	clPartialScalar
	// clPartialTable: a grouped-aggregate hash table over partitioned
	// rows — consumable only by HASH_EXTRACT.
	clPartialTable
	// clPartialGroup: a dense sorted group column extracted from a partial
	// table — a partial that must be merged, never consumed downstream.
	clPartialGroup
)

// ShardBoundaries splits rows into shard contiguous ranges, near-equal with
// 64-aligned interior cuts (bitmap views require word-aligned starts). The
// returned slice has shards+1 entries; shard i covers [b[i], b[i+1]).
func ShardBoundaries(rows, shards int) []int {
	if shards < 1 {
		shards = 1
	}
	b := make([]int, shards+1)
	for i := 1; i < shards; i++ {
		cut := (rows * i / shards) &^ 63
		if cut < b[i-1] {
			cut = b[i-1]
		}
		b[i] = cut
	}
	b[shards] = rows
	return b
}

// Scatter plans scatter/gather execution for g. It tries each distinct scan
// length as the partitioned-table size, largest first (partitioning the
// biggest table wins the most), and returns the first candidate whose every
// result provably merges exactly. ok is false when no candidate works —
// the caller falls back to unsharded execution, never to a wrong answer.
func Scatter(g *Graph) (spec *ScatterSpec, ok bool) {
	if g == nil || g.Validate() != nil {
		return nil, false
	}
	seen := map[int]bool{}
	var lengths []int
	for _, n := range g.Nodes() {
		if n.IsScan() {
			l := n.Scan.Data.Len()
			if l > 0 && !seen[l] {
				seen[l] = true
				lengths = append(lengths, l)
			}
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(lengths)))
	for _, l := range lengths {
		if s, ok := tryScatter(g, l); ok {
			return s, true
		}
	}
	return nil, false
}

// tryScatter classifies every port of g under the hypothesis "all scans of
// length partRows are partitioned, the rest broadcast" and builds the merge
// plan, or reports that the hypothesis does not yield an exact rewrite.
func tryScatter(g *Graph, partRows int) (*ScatterSpec, bool) {
	cls := map[PortRef]portClass{}
	ops := map[PortRef]kernels.AggOp{}
	partitioned := map[NodeID]bool{}
	var partScans []NodeID

	for _, n := range g.Nodes() {
		if n.IsScan() {
			if n.Scan.Data.Len() == partRows {
				cls[PortRef{Node: n.ID, Port: 0}] = clPart
				partitioned[n.ID] = true
				partScans = append(partScans, n.ID)
			}
			continue
		}

		inCls := make([]portClass, len(n.Inputs()))
		anyPart := false
		for i, e := range n.Inputs() {
			c := cls[PortRef{Node: e.From, Port: e.FromPort}]
			inCls[i] = c
			switch c {
			case clPartialScalar, clPartialGroup:
				// Scalar and group partials are merge-only: anything
				// consuming one downstream would see per-shard partials
				// where the unsharded plan sees the total.
				return nil, false
			case clPartialTable:
				if n.Task.Kind != primitive.HashExtract {
					return nil, false
				}
			case clPart:
				anyPart = true
			}
		}

		out := clBroadcast
		switch n.Task.Kind {
		case primitive.Map, primitive.FilterBitmap, primitive.Materialize:
			// Row-local: each output row depends only on the same input
			// row (plus broadcast hash-table state for semi-join
			// filters), so partitioned inputs yield partitioned outputs.
			// Mixing a partitioned column with a full-length broadcast
			// column row-wise would misalign rows, so that is rejected.
			anyBroadcastRows := false
			for i, e := range n.Inputs() {
				if e.Semantic == primitive.HashTable {
					continue // replicated lookup state, not rows
				}
				if inCls[i] != clPart {
					anyBroadcastRows = true
				}
			}
			if anyPart {
				if anyBroadcastRows {
					return nil, false
				}
				out = clPart
			}
		case primitive.AggBlock:
			if anyPart {
				out = clPartialScalar
				ops[PortRef{Node: n.ID, Port: 0}] = aggOpOf(n)
			}
		case primitive.HashAgg:
			if anyPart {
				for _, c := range inCls {
					if c != clPart {
						return nil, false // keys and values must align
					}
				}
				out = clPartialTable
				ops[PortRef{Node: n.ID, Port: 0}] = aggOpOf(n)
			}
		case primitive.HashExtract:
			if inCls[0] == clPartialTable {
				out = clPartialGroup
				op := ops[PortRef{Node: n.Inputs()[0].From, Port: n.Inputs()[0].FromPort}]
				ops[PortRef{Node: n.ID, Port: 0}] = op
				ops[PortRef{Node: n.ID, Port: 1}] = op
			}
		default:
			// HashBuild, HashProbe, SortAgg, PrefixSum, FilterPosition,
			// MaterializePosition, fused chains: their outputs encode
			// global positions or cross-row order, which a shard-local
			// run cannot reproduce. Broadcast-only.
			if anyPart {
				return nil, false
			}
		}
		for p := 0; p < n.NumOutputs(); p++ {
			cls[PortRef{Node: n.ID, Port: p}] = out
		}
	}

	if len(partScans) == 0 {
		return nil, false
	}

	spec := &ScatterSpec{
		PartRows:    partRows,
		PartScans:   partScans,
		src:         g,
		partitioned: partitioned,
	}

	// Resolve names the original plan gave to ports, for group partners.
	names := map[PortRef]string{}
	for _, r := range g.Results() {
		if !r.Avg {
			names[r.Ref] = r.Name
		}
	}

	hasPartWork := false
	for _, r := range g.Results() {
		if r.Avg {
			cSum, cCnt := cls[r.Ref], cls[r.Count]
			switch {
			case cSum == clBroadcast && cCnt == clBroadcast:
				spec.Merges = append(spec.Merges, MergeSpec{Name: r.Name, Kind: MergeFirst})
				spec.shardResults = append(spec.shardResults, r)
			case cSum == clPartialScalar && cCnt == clPartialScalar:
				// Shards report the raw partials under synthetic names;
				// finalizing the division per shard would be wrong.
				sumCol := "__scatter." + r.Name + ".sum"
				cntCol := "__scatter." + r.Name + ".count"
				spec.shardResults = append(spec.shardResults,
					Result{Name: sumCol, Ref: r.Ref},
					Result{Name: cntCol, Ref: r.Count})
				spec.Merges = append(spec.Merges, MergeSpec{
					Name: r.Name, Kind: MergeAvg,
					Op: ops[r.Ref], Sum: sumCol,
					CountOp: ops[r.Count], Count: cntCol,
				})
				hasPartWork = true
			default:
				return nil, false
			}
			continue
		}

		switch cls[r.Ref] {
		case clBroadcast:
			spec.Merges = append(spec.Merges, MergeSpec{Name: r.Name, Kind: MergeFirst})
			spec.shardResults = append(spec.shardResults, r)
		case clPart:
			if g.Node(r.Ref.Node).OutputSpec(r.Ref.Port).Type == vec.Bits {
				// Concatenating bitmaps would need word-boundary
				// stitching; decline rather than risk it.
				return nil, false
			}
			spec.Merges = append(spec.Merges, MergeSpec{Name: r.Name, Kind: MergeConcat})
			spec.shardResults = append(spec.shardResults, r)
			hasPartWork = true
		case clPartialScalar:
			spec.Merges = append(spec.Merges, MergeSpec{Name: r.Name, Kind: MergeAgg, Op: ops[r.Ref]})
			spec.shardResults = append(spec.shardResults, r)
			hasPartWork = true
		case clPartialGroup:
			partner := PortRef{Node: r.Ref.Node, Port: 1 - r.Ref.Port}
			pName, marked := names[partner]
			if !marked {
				pName = fmt.Sprintf("__scatter.n%d.p%d", partner.Node, partner.Port)
				spec.shardResults = append(spec.shardResults, Result{Name: pName, Ref: partner})
				names[partner] = pName
			}
			m := MergeSpec{Name: r.Name, Kind: MergeGroup, Op: ops[r.Ref], Port: r.Ref.Port}
			if r.Ref.Port == 0 {
				m.Keys, m.Vals = r.Name, pName
			} else {
				m.Keys, m.Vals = pName, r.Name
			}
			spec.Merges = append(spec.Merges, m)
			spec.shardResults = append(spec.shardResults, r)
			hasPartWork = true
		default: // clPartialTable: a raw hash table is not a mergeable result
			return nil, false
		}
	}

	if !hasPartWork {
		// Every result is broadcast: scattering would replicate all the
		// work N times for nothing.
		return nil, false
	}
	return spec, true
}

// aggOpOf extracts the aggregate function a node folds with, for merging
// its partials. COUNT-shaped kernels carry no op parameter: agg_count_bits
// has no params at all, hash_agg_count_i32 only the groups hint.
func aggOpOf(n *Node) kernels.AggOp {
	switch n.Task.Kernel {
	case "agg_count_bits", "hash_agg_count_i32":
		return kernels.AggCount
	}
	if len(n.Task.Params) > 0 {
		return kernels.AggOp(n.Task.Params[0])
	}
	return kernels.AggSum
}

// ShardGraph builds the graph one shard executes for partition [lo, hi) of
// the partitioned table: the same nodes in the same order sharing the same
// *Task definitions, with partitioned scans rebound to zero-copy row views
// and result marks replaced by the shard-side set (raw partials under
// synthetic names where merging needs them).
func (s *ScatterSpec) ShardGraph(lo, hi int) (*Graph, error) {
	if lo < 0 || hi < lo || hi > s.PartRows {
		return nil, fmt.Errorf("%w: shard range [%d:%d) of %d rows", ErrBadGraph, lo, hi, s.PartRows)
	}
	ng := New()
	for _, n := range s.src.Nodes() {
		if n.IsScan() {
			data := n.Scan.Data
			if s.partitioned[n.ID] {
				data = data.Slice(lo, hi)
			}
			// AddScan assigns the same IDs as the source graph: nodes are
			// rebuilt in insertion order.
			ng.AddScan(n.Scan.Name, data, n.Device)
			continue
		}
		inputs := make([]PortRef, len(n.Inputs()))
		for i, e := range n.Inputs() {
			inputs[i] = PortRef{Node: e.From, Port: e.FromPort}
		}
		ng.AddTask(n.Task, n.Device, inputs...)
	}
	for _, r := range s.shardResults {
		if r.Avg {
			ng.MarkResultAvg(r.Name, r.Ref, r.Count)
		} else {
			ng.MarkResult(r.Name, r.Ref)
		}
	}
	if err := ng.Validate(); err != nil {
		return nil, err
	}
	return ng, nil
}
