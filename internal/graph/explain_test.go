package graph

import (
	"strings"
	"testing"

	"github.com/adamant-db/adamant/internal/kernels"
	"github.com/adamant-db/adamant/internal/task"
)

// buildAggExtract wires a Q3-like tail: a hash aggregate pipeline feeding an
// extract pipeline that streams no scans, so its cardinality is estimated.
func buildAggExtract(t *testing.T) *Graph {
	t.Helper()
	g := New()
	keys := g.AddScan("t.k", col(128), dev)
	vals := g.AddScan("t.v", col(128), dev)
	v64 := g.AddTask(task.NewMapCast("cast"), dev, vals)
	h := g.AddTask(task.NewHashAgg(kernels.AggSum, 16, "sum by k"), dev, keys, g.Out(v64, 0))
	ext := g.AddTask(task.NewHashExtract(16, "extract"), dev, g.Out(h, 0))
	g.MarkResult("k", g.Out(ext, 0))
	g.MarkResult("sum", g.Out(ext, 1))
	return g
}

func TestEstimateRows(t *testing.T) {
	g := buildAggExtract(t)
	ps, err := g.BuildPipelines()
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2 {
		t.Fatalf("got %d pipelines, want 2", len(ps))
	}
	est := EstimateRows(g, ps)
	if est[0] != 128 {
		t.Errorf("scan-fed pipeline estimate = %d, want its 128 scan rows", est[0])
	}
	if est[1] <= 0 {
		t.Errorf("extract pipeline estimate = %d, want a positive producer-derived estimate", est[1])
	}
}

func TestWriteExplain(t *testing.T) {
	g := buildAggExtract(t)
	ps, err := g.BuildPipelines()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	WriteExplain(&sb, g, ps, "  ")
	out := sb.String()
	for _, want := range []string{
		"pipeline 0 — 128 rows",
		"scan t.k",
		"scan t.v",
		"HASH_AGG[sum by k] †", // breakers carry the paper's dagger
		"pipeline 1 (after [0])",
		"rows (estimated)",
		"HASH_EXTRACT[extract]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
}

// TestWriteExplainFused: the fused plan renders with the fused primitive in
// place of the chain, so -explain shows what actually dispatches.
func TestWriteExplainFused(t *testing.T) {
	g := buildQ6Like(t)
	fg := Fuse(g)
	ps, err := fg.BuildPipelines()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	WriteExplain(&sb, fg, ps, "")
	out := sb.String()
	if !strings.Contains(out, "FUSED_AGG_BLOCK") {
		t.Errorf("fused explain missing FUSED_AGG_BLOCK:\n%s", out)
	}
	if strings.Contains(out, "MATERIALIZE") || strings.Contains(out, "MAP[") {
		t.Errorf("fused explain still shows chain intermediates:\n%s", out)
	}
}
