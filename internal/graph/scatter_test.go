package graph

import (
	"testing"

	"github.com/adamant-db/adamant/internal/kernels"
	"github.com/adamant-db/adamant/internal/task"
	"github.com/adamant-db/adamant/internal/vec"
)

func TestShardBoundaries(t *testing.T) {
	cases := []struct {
		rows, shards int
	}{
		{640, 1}, {640, 2}, {640, 4}, {641, 3}, {100, 8}, {0, 4}, {63, 2}, {64, 2}, {1 << 20, 7},
	}
	for _, c := range cases {
		b := ShardBoundaries(c.rows, c.shards)
		if len(b) != c.shards+1 {
			t.Fatalf("rows=%d shards=%d: %d boundaries", c.rows, c.shards, len(b))
		}
		if b[0] != 0 || b[c.shards] != c.rows {
			t.Errorf("rows=%d shards=%d: span [%d,%d]", c.rows, c.shards, b[0], b[c.shards])
		}
		for i := 1; i <= c.shards; i++ {
			if b[i] < b[i-1] {
				t.Errorf("rows=%d shards=%d: not monotone at %d: %v", c.rows, c.shards, i, b)
			}
			if i < c.shards && b[i]%64 != 0 {
				t.Errorf("rows=%d shards=%d: interior cut %d not 64-aligned", c.rows, c.shards, b[i])
			}
		}
	}
	// Near-equal split on a large aligned table.
	b := ShardBoundaries(1<<20, 4)
	for i := 0; i < 4; i++ {
		if got := b[i+1] - b[i]; got != 1<<18 {
			t.Errorf("even split: partition %d has %d rows, want %d", i, got, 1<<18)
		}
	}
}

// TestScatterQ6Like: the canonical filter→materialize→map→aggregate shape
// partitions its single table and merges one SUM partial.
func TestScatterQ6Like(t *testing.T) {
	g := buildQ6Like(t)
	spec, ok := Scatter(g)
	if !ok {
		t.Fatal("Q6-like plan did not scatter")
	}
	if spec.PartRows != 640 || len(spec.PartScans) != 3 {
		t.Fatalf("partitioning: %d rows over %d scans", spec.PartRows, len(spec.PartScans))
	}
	if len(spec.Merges) != 1 || spec.Merges[0].Kind != MergeAgg || spec.Merges[0].Op != kernels.AggSum {
		t.Fatalf("merges = %+v, want one agg(sum)", spec.Merges)
	}
	bounds := ShardBoundaries(640, 3)
	for p := 0; p < 3; p++ {
		sg, err := spec.ShardGraph(bounds[p], bounds[p+1])
		if err != nil {
			t.Fatalf("shard graph %d: %v", p, err)
		}
		if len(sg.Nodes()) != len(g.Nodes()) {
			t.Fatalf("shard graph %d: %d nodes, want %d", p, len(sg.Nodes()), len(g.Nodes()))
		}
		for _, n := range sg.Nodes() {
			if n.IsScan() && n.Scan.Data.Len() != bounds[p+1]-bounds[p] {
				t.Errorf("shard %d scan %s has %d rows, want %d", p, n.Scan.Name, n.Scan.Data.Len(), bounds[p+1]-bounds[p])
			}
		}
	}
}

// TestScatterBroadcastBuildSide: a semi-join whose build side is a smaller
// replicated table partitions the probe side and broadcasts the build —
// the Q3-style join-broadcast shape.
func TestScatterBroadcastBuildSide(t *testing.T) {
	g := New()
	bk := g.AddScan("b.key", col(64), dev)
	build := g.AddTask(task.NewHashBuildSet(64, "set"), dev, bk)
	probe := g.AddScan("t.key", col(640), dev)
	vals := g.AddScan("t.val", col(640), dev)
	semi := g.AddTask(task.NewSemiJoinFilter("exists"), dev, probe, g.Out(build, 0))
	m := g.AddTask(mustMaterialize(t), dev, vals, g.Out(semi, 0))
	agg := g.AddTask(mustAgg(t, kernels.AggSum), dev, g.Out(m, 0))
	g.MarkResult("sum", g.Out(agg, 0))

	spec, ok := Scatter(g)
	if !ok {
		t.Fatal("broadcast-build semi-join did not scatter")
	}
	if spec.PartRows != 640 {
		t.Fatalf("partitioned %d rows, want the 640-row probe side", spec.PartRows)
	}
	for _, id := range spec.PartScans {
		if g.Node(id).Scan.Name == "b.key" {
			t.Error("build side partitioned; it must broadcast")
		}
	}
}

// TestScatterGroupBy: hash aggregation followed by extraction merges as a
// sorted group k-way merge, with the unmarked partner port exported under
// a synthetic name.
func TestScatterGroupBy(t *testing.T) {
	g := New()
	keys := g.AddScan("t.k", col(640), dev)
	vals := g.AddScan("t.v", col(640), dev)
	ha := g.AddTask(task.NewHashAgg(kernels.AggSum, 64, "group"), dev, keys, vals)
	ex := g.AddTask(task.NewHashExtract(64, "extract"), dev, g.Out(ha, 0))
	g.MarkResult("k", g.Out(ex, 0))
	g.MarkResult("sum", g.Out(ex, 1))

	spec, ok := Scatter(g)
	if !ok {
		t.Fatal("group-by plan did not scatter")
	}
	if len(spec.Merges) != 2 {
		t.Fatalf("merges = %+v", spec.Merges)
	}
	for _, m := range spec.Merges {
		if m.Kind != MergeGroup || m.Op != kernels.AggSum {
			t.Errorf("merge %q = %+v, want group(sum)", m.Name, m)
		}
		if m.Keys != "k" || m.Vals != "sum" {
			t.Errorf("merge %q pairs %q/%q, want k/sum", m.Name, m.Keys, m.Vals)
		}
	}

	// Same plan with only the aggregate marked: the key port is exported
	// under a synthetic shard-result name.
	g2 := New()
	k2 := g2.AddScan("t.k", col(640), dev)
	v2 := g2.AddScan("t.v", col(640), dev)
	ha2 := g2.AddTask(task.NewHashAgg(kernels.AggMax, 64, "group"), dev, k2, v2)
	ex2 := g2.AddTask(task.NewHashExtract(64, "extract"), dev, g2.Out(ha2, 0))
	g2.MarkResult("max", g2.Out(ex2, 1))
	spec2, ok := Scatter(g2)
	if !ok {
		t.Fatal("half-marked group-by did not scatter")
	}
	if len(spec2.Merges) != 1 || spec2.Merges[0].Kind != MergeGroup || spec2.Merges[0].Op != kernels.AggMax {
		t.Fatalf("merges = %+v", spec2.Merges)
	}
	if spec2.Merges[0].Keys == "" || spec2.Merges[0].Vals != "max" {
		t.Fatalf("partner resolution: %+v", spec2.Merges[0])
	}
}

// TestScatterAvg: an AVG result ships raw SUM and COUNT partials under
// synthetic names — finalizing per shard would average the averages.
func TestScatterAvg(t *testing.T) {
	g := New()
	a := g.AddScan("t.a", col(640), dev)
	f := g.AddTask(task.NewFilterBitmap(kernels.CmpLt, 10, 0, "a<10"), dev, a)
	m := g.AddTask(mustMaterialize(t), dev, a, g.Out(f, 0))
	sum := g.AddTask(mustAgg(t, kernels.AggSum), dev, g.Out(m, 0))
	cnt := g.AddTask(mustAgg(t, kernels.AggCount), dev, g.Out(m, 0))
	g.MarkResultAvg("avg", g.Out(sum, 0), g.Out(cnt, 0))

	spec, ok := Scatter(g)
	if !ok {
		t.Fatal("avg plan did not scatter")
	}
	if len(spec.Merges) != 1 {
		t.Fatalf("merges = %+v", spec.Merges)
	}
	ms := spec.Merges[0]
	if ms.Kind != MergeAvg || ms.Op != kernels.AggSum || ms.CountOp != kernels.AggCount {
		t.Fatalf("avg merge = %+v", ms)
	}
	if ms.Sum != "__scatter.avg.sum" || ms.Count != "__scatter.avg.count" {
		t.Fatalf("partial names = %q/%q", ms.Sum, ms.Count)
	}
	sg, err := spec.ShardGraph(0, 64)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, r := range sg.Results() {
		names = append(names, r.Name)
		if r.Avg {
			t.Errorf("shard result %q still AVG-marked; shards must ship raw partials", r.Name)
		}
	}
	if len(names) != 2 {
		t.Fatalf("shard results = %v", names)
	}
}

// TestScatterDeclines pins the rejection set: every shape whose shard-local
// run cannot provably reproduce the unsharded answer must decline rather
// than risk a silent wrong result.
func TestScatterDeclines(t *testing.T) {
	cases := []struct {
		name  string
		build func(t *testing.T) *Graph
	}{
		{"partitioned_hash_build", func(t *testing.T) *Graph {
			// The only table feeds a hash build: positions are global.
			g := New()
			k := g.AddScan("t.k", col(640), dev)
			b := g.AddTask(task.NewHashBuildSet(64, "set"), dev, k)
			g.MarkResult("set", g.Out(b, 0))
			return g
		}},
		{"position_list", func(t *testing.T) *Graph {
			g := New()
			a := g.AddScan("t.a", col(640), dev)
			f := g.AddTask(task.NewFilterPosition(kernels.CmpLt, 10, 0, 0.5, "pos"), dev, a)
			mp, err := task.NewMaterializePosition(vec.Int32, "gather")
			if err != nil {
				t.Fatal(err)
			}
			m := g.AddTask(mp, dev, a, g.Out(f, 0))
			agg := g.AddTask(mustAgg(t, kernels.AggSum), dev, g.Out(m, 0))
			g.MarkResult("sum", g.Out(agg, 0))
			return g
		}},
		{"prefix_sum", func(t *testing.T) *Graph {
			// Prefix sums over partitioned rows carry cross-row order a
			// shard-local run cannot reproduce.
			g := New()
			k := g.AddScan("t.k", col(640), dev)
			gb := g.AddTask(task.NewGroupBoundaries("gb"), dev, k)
			ps := g.AddTask(task.NewPrefixSum("ps"), dev, g.Out(gb, 0))
			g.MarkResult("idx", g.Out(ps, 0))
			return g
		}},
		{"partial_consumed_downstream", func(t *testing.T) *Graph {
			// The aggregate's scalar feeds another operator: every shard
			// would see its own partial where the plan means the total.
			g := New()
			a := g.AddScan("t.a", col(640), dev)
			m := g.AddTask(task.NewMapCast("widen"), dev, a)
			agg := g.AddTask(mustAgg(t, kernels.AggSum), dev, g.Out(m, 0))
			cast := g.AddTask(task.NewMapCast("again"), dev, g.Out(agg, 0))
			g.MarkResult("sum", g.Out(cast, 0))
			return g
		}},
		{"bitmap_result", func(t *testing.T) *Graph {
			g := New()
			a := g.AddScan("t.a", col(640), dev)
			f := g.AddTask(task.NewFilterBitmap(kernels.CmpLt, 10, 0, "a<10"), dev, a)
			g.MarkResult("bits", g.Out(f, 0))
			return g
		}},
		{"broadcast_only", func(t *testing.T) *Graph {
			// No partitionable table at all: scattering would replicate
			// everything.
			g := New()
			a := g.AddScan("t.a", col(0), dev)
			m := g.AddTask(task.NewMapCast("widen"), dev, a)
			agg := g.AddTask(mustAgg(t, kernels.AggSum), dev, g.Out(m, 0))
			g.MarkResult("sum", g.Out(agg, 0))
			return g
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g := c.build(t)
			if err := g.Validate(); err != nil {
				t.Fatalf("case graph invalid: %v", err)
			}
			if _, ok := Scatter(g); ok {
				t.Errorf("%s scattered; it must decline", c.name)
			}
		})
	}
}

// TestScatterCandidateIteration: when partitioning the larger table is
// rejected (it feeds a hash build), the planner falls back to the next
// distinct scan length — the Q4 shape, where only the orders side
// partitions.
func TestScatterCandidateIteration(t *testing.T) {
	g := New()
	big := g.AddScan("lineitem.k", col(1280), dev) // larger, but feeds the build
	build := g.AddTask(task.NewHashBuildSet(64, "set"), dev, big)
	ok := g.AddScan("orders.k", col(640), dev)
	semi := g.AddTask(task.NewSemiJoinFilter("exists"), dev, ok, g.Out(build, 0))
	cnt := g.AddTask(task.NewAggCountBits("count"), dev, g.Out(semi, 0))
	g.MarkResult("count", g.Out(cnt, 0))

	spec, okk := Scatter(g)
	if !okk {
		t.Fatal("Q4 shape did not scatter")
	}
	if spec.PartRows != 640 {
		t.Fatalf("partitioned %d rows, want the 640-row orders side", spec.PartRows)
	}
	if len(spec.Merges) != 1 || spec.Merges[0].Kind != MergeAgg || spec.Merges[0].Op != kernels.AggCount {
		t.Fatalf("merges = %+v, want one agg(count)", spec.Merges)
	}
}
