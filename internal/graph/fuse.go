package graph

import (
	"github.com/adamant-db/adamant/internal/device"
	"github.com/adamant-db/adamant/internal/kernels"
	"github.com/adamant-db/adamant/internal/primitive"
	"github.com/adamant-db/adamant/internal/task"
	"github.com/adamant-db/adamant/internal/vec"
)

// This file implements the fusion pass: a pure rewrite over a primitive
// graph that recognizes fusible selection→map→{reduce,materialize} chains
// and replaces them with the single-pass fused primitives, so the chunked
// execution models stop bouncing bitmap and gathered-column intermediates
// through device memory (the dominant cost the paper's Fig. 11 gap to
// HeavyDB comes from).
//
// A chain is fusible when every link matches the shapes the fused kernels
// can interpret, all on one device:
//
//   - terminal: an AGG_BLOCK (agg_block_i32/i64) fed by a fusible value
//     expression, or a MATERIALIZE (materialize_bitmap_*) of a scan column;
//   - value expression: a MAP (map_mul, map_mul_complement, map_cast) whose
//     operands are either all scans, or all MATERIALIZEs of scans sharing
//     one bitmap source — or a single MATERIALIZE of a scan;
//   - bitmap source: an AND-tree of bitmap_and nodes over constant
//     FILTER_BITMAP (filter_bitmap_i32/i64) predicates on scan columns.
//
// Everything else — OR/NOT/ANDNOT combinations, column-column filters,
// semi-join filters, position-list filters, hash operators, cross-device
// chains — breaks the chain: its terminal stays on the unfused path
// untouched. Partial fusion is sound because a fused kernel re-evaluates
// the predicates from the base columns, so chain-internal nodes that are
// still consumed elsewhere (a bitmap feeding a COUNT, a result-marked
// materialize) simply stay alive alongside the fused node. Internal nodes
// nothing references anymore are dropped, including scans that would
// otherwise be left without a consumer.

// chain is one detected fusible chain, rooted at terminal.
type chain struct {
	cols    []NodeID // distinct scan nodes, in first-reference order
	preds   []task.FusedPred
	m       task.FusedMap
	isAgg   bool
	aggOp   kernels.AggOp
	outType vec.Type
	label   string
}

// chainBuilder accumulates a chain while walking the original graph.
type chainBuilder struct {
	g      *Graph
	dev    device.ID
	c      chain
	colIdx map[NodeID]int
}

// col interns a scan node as a fused column argument.
func (b *chainBuilder) col(scan NodeID) int {
	if i, ok := b.colIdx[scan]; ok {
		return i
	}
	i := len(b.c.cols)
	b.colIdx[scan] = i
	b.c.cols = append(b.c.cols, scan)
	return i
}

// scanSource returns the scan node feeding e, or -1 if the source is not a
// scan on the chain's device.
func (b *chainBuilder) scanSource(e *Edge) NodeID {
	n := b.g.nodes[e.From]
	if !n.IsScan() || n.Device != b.dev {
		return -1
	}
	return n.ID
}

// predTree walks a bitmap AND-tree, collecting constant predicates over
// scan columns in DFS order. Any other bitmap producer makes the chain
// non-fusible.
func (b *chainBuilder) predTree(e *Edge) bool {
	n := b.g.nodes[e.From]
	if n.IsScan() || n.Task == nil || n.Device != b.dev {
		return false
	}
	switch n.Task.Kernel {
	case "bitmap_and":
		return b.predTree(n.in[0]) && b.predTree(n.in[1])
	case "filter_bitmap_i32", "filter_bitmap_i64":
		src := b.scanSource(n.in[0])
		if src < 0 {
			return false
		}
		p := n.Task.Params
		b.c.preds = append(b.c.preds, task.FusedPred{
			Col: b.col(src), Op: kernels.CmpOp(p[0]), Lo: p[1], Hi: p[2],
		})
		return true
	}
	return false
}

func isBitmapMaterialize(n *Node) bool {
	if n.IsScan() || n.Task == nil {
		return false
	}
	return n.Task.Kernel == "materialize_bitmap_i32" || n.Task.Kernel == "materialize_bitmap_i64"
}

// operand is one map operand resolved to its base column.
type operand struct {
	scan   NodeID
	bm     *Edge // the materialize's bitmap edge; nil for a direct scan
	viaMat bool
}

// resolveOperand resolves a map operand edge to a scan column, either
// directly or through a MATERIALIZE of a scan.
func (b *chainBuilder) resolveOperand(e *Edge) (operand, bool) {
	from := b.g.nodes[e.From]
	if from.IsScan() {
		if from.Device != b.dev {
			return operand{}, false
		}
		return operand{scan: from.ID}, true
	}
	if !isBitmapMaterialize(from) || from.Device != b.dev {
		return operand{}, false
	}
	src := b.scanSource(from.in[0])
	if src < 0 {
		return operand{}, false
	}
	return operand{scan: src, bm: from.in[1], viaMat: true}, true
}

// operands resolves a value expression's operand edges and, when they run
// through materializes, the shared bitmap's predicate tree. The predicates
// are collected before the map columns are interned so the fused argument
// order is always predicates-first.
func (b *chainBuilder) operands(edges []*Edge) ([]operand, bool) {
	ops := make([]operand, 0, len(edges))
	for _, e := range edges {
		op, ok := b.resolveOperand(e)
		if !ok {
			return nil, false
		}
		ops = append(ops, op)
	}
	anyMat := false
	for _, op := range ops {
		if op.viaMat {
			anyMat = true
		}
	}
	if anyMat {
		// All operands must flow through materializes over one shared
		// bitmap; mixing filtered and unfiltered columns has no single-pass
		// form (the lengths differ).
		first := ops[0]
		if !first.viaMat {
			return nil, false
		}
		for _, op := range ops[1:] {
			if !op.viaMat || op.bm.From != first.bm.From || op.bm.FromPort != first.bm.FromPort {
				return nil, false
			}
		}
		if !b.predTree(first.bm) {
			return nil, false
		}
	}
	return ops, true
}

// detectAgg recognizes a fusible chain ending in an AGG_BLOCK over a map or
// materialize.
func detectAgg(g *Graph, n *Node) *chain {
	if n.Task.Kind != primitive.AggBlock {
		return nil
	}
	if n.Task.Kernel != "agg_block_i32" && n.Task.Kernel != "agg_block_i64" {
		return nil
	}
	b := &chainBuilder{g: g, dev: n.Device, colIdx: map[NodeID]int{}}
	b.c.isAgg = true
	b.c.aggOp = kernels.AggOp(n.Task.Params[0])
	b.c.label = n.Task.Label
	if b.c.label == "" {
		b.c.label = n.Task.Kernel
	}

	m := g.nodes[n.in[0].From]
	if m.IsScan() || m.Task == nil || m.Device != n.Device {
		return nil
	}
	var opEdges []*Edge
	switch m.Task.Kernel {
	case "map_mul_i32_i64":
		b.c.m.Kind = kernels.FusedMapMul
		opEdges = m.in
	case "map_mul_complement_i32_i64":
		b.c.m.Kind = kernels.FusedMapMulComp
		b.c.m.K = m.Task.Params[0]
		opEdges = m.in
	case "map_cast_i32_i64":
		b.c.m.Kind = kernels.FusedMapCol
		opEdges = m.in
	case "materialize_bitmap_i32", "materialize_bitmap_i64":
		// AGG_BLOCK directly over a materialized column.
		b.c.m.Kind = kernels.FusedMapCol
		opEdges = n.in
	default:
		return nil
	}
	ops, ok := b.operands(opEdges)
	if !ok {
		return nil
	}
	b.c.m.A = b.col(ops[0].scan)
	if len(ops) > 1 {
		b.c.m.B = b.col(ops[1].scan)
	}
	return &b.c
}

// detectMat recognizes a fusible chain ending in a MATERIALIZE of a scan
// column through a predicate AND-tree.
func detectMat(g *Graph, n *Node) *chain {
	if !isBitmapMaterialize(n) {
		return nil
	}
	b := &chainBuilder{g: g, dev: n.Device, colIdx: map[NodeID]int{}}
	b.c.outType = n.Task.Outputs[0].Type
	b.c.label = n.Task.Label
	if b.c.label == "" {
		b.c.label = n.Task.Kernel
	}
	src := b.scanSource(n.in[0])
	if src < 0 {
		return nil
	}
	if !b.predTree(n.in[1]) {
		return nil
	}
	b.c.m.Kind = kernels.FusedMapCol
	b.c.m.A = b.col(src)
	return &b.c
}

// Fuse returns a graph with every fusible chain rewritten into a fused
// single-pass node, or g itself (unchanged) when nothing fuses. The rewrite
// is pure: the input graph is never mutated, estimated cardinalities and
// result markings are preserved, and chain-internal nodes that are still
// consumed elsewhere stay on the unfused path.
func Fuse(g *Graph) *Graph {
	if g == nil || g.Validate() != nil {
		return g
	}

	chains := map[NodeID]*chain{}
	for _, n := range g.nodes {
		if n.IsScan() || n.Task == nil {
			continue
		}
		if c := detectAgg(g, n); c != nil {
			chains[n.ID] = c
			continue
		}
		if c := detectMat(g, n); c != nil {
			chains[n.ID] = c
		}
	}
	if len(chains) == 0 {
		return g
	}

	// Liveness under the rewritten wiring: a fused terminal references its
	// base-column scans instead of its original inputs, so chain-internal
	// nodes (and their scans) survive only if a result or an unfused
	// consumer still needs them. Nodes are processed in reverse insertion
	// order — edges only point backward, so every consumer is decided
	// before its producers.
	isResult := make([]bool, len(g.nodes))
	for _, r := range g.results {
		isResult[r.Ref.Node] = true
		if r.Avg {
			isResult[r.Count.Node] = true
		}
	}
	outDegree := make([]int, len(g.nodes))
	for _, e := range g.edges {
		outDegree[e.From]++
	}
	referenced := make([]bool, len(g.nodes))
	keep := make([]bool, len(g.nodes))
	for i := len(g.nodes) - 1; i >= 0; i-- {
		n := g.nodes[i]
		sink := !n.IsScan() && outDegree[i] == 0
		keep[i] = isResult[i] || referenced[i] || sink
		if !keep[i] {
			continue
		}
		if c, fused := chains[n.ID]; fused {
			for _, s := range c.cols {
				referenced[s] = true
			}
		} else {
			for _, e := range n.in {
				referenced[e.From] = true
			}
		}
	}
	anyFused := false
	for id := range chains {
		if keep[id] {
			anyFused = true
		} else {
			delete(chains, id) // chain absorbed into an enclosing one
		}
	}
	if !anyFused {
		return g
	}

	// Rebuild: kept nodes in original insertion order, fused terminals
	// replaced by their single-pass tasks wired straight to the scans.
	ng := New()
	newID := make(map[NodeID]NodeID, len(g.nodes))
	remap := func(old PortRef) PortRef {
		return PortRef{Node: newID[old.Node], Port: old.Port}
	}
	for _, n := range g.nodes {
		if !keep[n.ID] {
			continue
		}
		if n.IsScan() {
			ref := ng.AddScan(n.Scan.Name, n.Scan.Data, n.Device)
			newID[n.ID] = ref.Node
			continue
		}
		if c, fused := chains[n.ID]; fused {
			var t *task.Task
			if c.isAgg {
				t = task.NewFusedFilterAgg(c.aggOp, c.preds, c.m, len(c.cols), c.label)
			} else {
				t = task.NewFusedFilterMat(c.outType, c.preds, c.m, len(c.cols), c.label)
			}
			inputs := make([]PortRef, len(c.cols))
			for i, s := range c.cols {
				inputs[i] = remap(PortRef{Node: s, Port: 0})
			}
			newID[n.ID] = ng.AddTask(t, n.Device, inputs...)
			continue
		}
		inputs := make([]PortRef, len(n.in))
		for i, e := range n.in {
			inputs[i] = remap(PortRef{Node: e.From, Port: e.FromPort})
		}
		newID[n.ID] = ng.AddTask(n.Task, n.Device, inputs...)
	}
	for _, r := range g.results {
		if r.Avg {
			ng.MarkResultAvg(r.Name, remap(r.Ref), remap(r.Count))
			continue
		}
		ng.MarkResult(r.Name, remap(r.Ref))
	}
	return ng
}
