package graph

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Fingerprint derives a normalized shape key for a plan: the same logical
// query keys identically regardless of literal constants, bound data,
// scale factor, or device placement, so the profiler can aggregate "all
// the Q6-shaped traffic" no matter who ran it or where it was placed.
//
// The fingerprint hashes node kinds and kernel names plus the edge
// topology (ports and semantics) — deliberately excluding task params
// (literal constants), scan names/data, and device IDs. The readable
// prefix counts scans and tasks so operators can eyeball what a shape is
// without a lookup table; the FNV-1a suffix disambiguates topologies with
// equal counts.
func Fingerprint(g *Graph) string {
	if g == nil {
		return "empty/0000000000000000"
	}
	h := fnv.New64a()
	scans, tasks := 0, 0
	kinds := make(map[string]int)
	for _, n := range g.nodes {
		if n.IsScan() {
			scans++
			fmt.Fprintf(h, "n%d:scan;", n.ID)
			continue
		}
		tasks++
		kinds[n.Task.Kind.String()]++
		fmt.Fprintf(h, "n%d:%s[%s];", n.ID, n.Task.Kind, n.Task.Kernel)
	}
	for _, e := range g.edges {
		fmt.Fprintf(h, "e%d.%d->%d.%d:%s;", e.From, e.FromPort, e.To, e.ToPort, e.Semantic)
	}
	for _, r := range g.results {
		fmt.Fprintf(h, "r%d.%d;", r.Ref.Node, r.Ref.Port)
	}

	names := make([]string, 0, len(kinds))
	for k := range kinds {
		names = append(names, k)
	}
	sort.Strings(names)
	shape := fmt.Sprintf("s%dt%d", scans, tasks)
	for _, k := range names {
		shape += fmt.Sprintf("-%s%d", k, kinds[k])
	}
	return fmt.Sprintf("%s/%016x", shape, h.Sum64())
}
