package fault_test

import (
	"errors"
	"reflect"
	"testing"

	"github.com/adamant-db/adamant/internal/device"
	"github.com/adamant-db/adamant/internal/devmem"
	"github.com/adamant-db/adamant/internal/driver/simcuda"
	"github.com/adamant-db/adamant/internal/fault"
	"github.com/adamant-db/adamant/internal/simhw"
	"github.com/adamant-db/adamant/internal/vclock"
	"github.com/adamant-db/adamant/internal/vec"
)

func newDev(t *testing.T, plan *fault.Plan) *fault.Injector {
	t.Helper()
	in := fault.Wrap(simcuda.New(&simhw.RTX2080Ti, nil), plan)
	if err := in.Initialize(); err != nil {
		t.Fatalf("initialize: %v", err)
	}
	return in
}

func TestZeroPlanInjectsNothing(t *testing.T) {
	in := newDev(t, nil)
	data := vec.FromInt32([]int32{1, 2, 3})
	for i := 0; i < 100; i++ {
		buf, _, err := in.PlaceData(data, 0)
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if err := in.DeleteMemory(buf); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
	}
	if got := in.Injections(); len(got) != 0 {
		t.Errorf("zero plan injected %v", got)
	}
}

// TestDeterministicSchedule: the same plan over the same op sequence fires
// exactly the same faults.
func TestDeterministicSchedule(t *testing.T) {
	plan := &fault.Plan{Seed: 42, PTransient: 0.3, POOM: 0.2, PLatency: 0.1}
	run := func() []fault.Injection {
		in := newDev(t, plan)
		data := vec.FromInt32(make([]int32, 8))
		for i := 0; i < 200; i++ {
			if buf, _, err := in.PlaceData(data, 0); err == nil {
				in.DeleteMemory(buf)
			}
			in.PrepareMemory(vec.Int64, 8, 0)
		}
		return in.Injections()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("plan with 30% transfer fault rate injected nothing over 400 ops")
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("schedules diverged:\n  a=%v\n  b=%v", a, b)
	}
}

// TestSeedIndependencePerDevice: two devices with different names draw
// different fault streams from the same plan.
func TestSeedIndependencePerDevice(t *testing.T) {
	plan := &fault.Plan{Seed: 7, PTransient: 0.5}
	a := fault.Wrap(simcuda.New(&simhw.RTX2080Ti, nil), plan)
	b := fault.Wrap(device.NewSim(device.SimConfig{
		Name: "gpu1/cuda", Spec: &simhw.RTX2080Ti, SDK: &simhw.CUDAProfile, Format: devmem.FormatCUDA,
	}), plan)
	data := vec.FromInt32(make([]int32, 8))
	var sa, sb []bool
	for i := 0; i < 64; i++ {
		_, _, errA := a.PlaceData(data, 0)
		_, _, errB := b.PlaceData(data, 0)
		sa = append(sa, errA != nil)
		sb = append(sb, errB != nil)
	}
	if reflect.DeepEqual(sa, sb) {
		t.Error("distinct devices drew identical fault streams")
	}
}

func TestScriptStep(t *testing.T) {
	plan := &fault.Plan{Script: []fault.Step{
		{At: 2, Op: fault.OpPlaceData, Kind: fault.Transient},
		{At: 1, Op: fault.OpExecute, Kind: fault.Launch},
	}}
	in := newDev(t, plan)
	data := vec.FromInt32(make([]int32, 8))

	if _, _, err := in.PlaceData(data, 0); err != nil {
		t.Fatalf("place 1 should pass: %v", err)
	}
	_, _, err := in.PlaceData(data, 0)
	if !errors.Is(err, fault.ErrTransient) || !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("place 2 = %v, want transient injected fault", err)
	}
	if !fault.IsTransient(err) {
		t.Error("transient fault not classified retryable")
	}
	// The faulted op did not happen: no buffer allocated.
	if used := in.MemStats().Used; used <= 0 {
		t.Errorf("first placement should still be resident, used=%d", used)
	}
}

func TestDeviceDeathIsPermanent(t *testing.T) {
	plan := &fault.Plan{DieAfterOps: 3}
	in := newDev(t, plan) // Initialize is op 1
	data := vec.FromInt32(make([]int32, 8))
	buf, _, err := in.PlaceData(data, 0) // op 2
	if err != nil {
		t.Fatalf("op 2: %v", err)
	}
	if _, _, err := in.PlaceData(data, 0); !errors.Is(err, fault.ErrDeviceLost) { // op 3: dies
		t.Fatalf("op 3 = %v, want device lost", err)
	}
	if !in.Dead() {
		t.Error("device should be dead")
	}
	if _, _, err := in.PlaceData(data, 0); !errors.Is(err, fault.ErrDeviceLost) {
		t.Fatalf("post-death op = %v, want device lost", err)
	}
	if fault.IsTransient(errors.New("wrapped: " + fault.ErrDeviceLost.Error())) {
		t.Error("string matching must not classify faults")
	}
	// Teardown still works: the leak barrier must be able to drain a dead
	// device so accounting returns to baseline.
	if err := in.DeleteMemory(buf); err != nil {
		t.Fatalf("delete on dead device: %v", err)
	}
	if used := in.MemStats().Used; used != 0 {
		t.Errorf("used = %d after draining dead device, want 0", used)
	}
	in.Revive()
	if _, _, err := in.PlaceData(data, 0); err != nil {
		t.Errorf("revived device still failing: %v", err)
	}
}

// TestDieAfterOpsOnExemptOp: DeleteMemory is exempt from faulting but
// still advances the op counter, so a death mark landing exactly on a
// deletion must kill the device at the next faultable op instead of
// silently never firing.
func TestDieAfterOpsOnExemptOp(t *testing.T) {
	plan := &fault.Plan{DieAfterOps: 3}
	in := newDev(t, plan) // Initialize is op 1
	data := vec.FromInt32(make([]int32, 8))
	buf, _, err := in.PlaceData(data, 0) // op 2
	if err != nil {
		t.Fatalf("op 2: %v", err)
	}
	if err := in.DeleteMemory(buf); err != nil { // op 3: the mark, exempt
		t.Fatalf("op 3 (delete): %v", err)
	}
	if _, _, err := in.PlaceData(data, 0); !errors.Is(err, fault.ErrDeviceLost) { // op 4
		t.Fatalf("first faultable op past the mark = %v, want device lost", err)
	}
	if !in.Dead() {
		t.Error("device should be dead")
	}
}

func TestLatencySpikeDelaysWithoutFailing(t *testing.T) {
	spike := 5 * vclock.Millisecond
	plan := &fault.Plan{
		SpikeDuration: spike,
		Script:        []fault.Step{{At: 1, Op: fault.OpPlaceData, Kind: fault.Latency}},
	}
	in := newDev(t, plan)
	data := vec.FromInt32(make([]int32, 8))
	_, end, err := in.PlaceData(data, 0)
	if err != nil {
		t.Fatalf("latency spike must not fail the op: %v", err)
	}
	if end < vclock.Time(spike) {
		t.Errorf("completion %v earlier than the %v spike", end, spike)
	}
	inj := in.Injections()
	if len(inj) != 1 || inj[0].Kind != fault.Latency {
		t.Errorf("injections = %v, want one latency spike", inj)
	}
}

func TestParsePlan(t *testing.T) {
	p, err := fault.ParsePlan("seed=9,transient=0.25,launch=0.1,oom=0.05,latency=0.5,spike=200us,die=40,at=7:lost,dev=cuda")
	if err != nil {
		t.Fatal(err)
	}
	want := &fault.Plan{
		Seed: 9, PTransient: 0.25, PLaunch: 0.1, POOM: 0.05, PLatency: 0.5,
		SpikeDuration: 200 * vclock.Microsecond, DieAfterOps: 40,
		Script:  []fault.Step{{At: 7, Op: -1, Kind: fault.DeviceLost}},
		Devices: []string{"cuda"},
	}
	if !reflect.DeepEqual(p, want) {
		t.Errorf("ParsePlan = %+v, want %+v", p, want)
	}
	if !p.AppliesTo("RTX 2080 Ti/cuda") || p.AppliesTo("i7/omp") {
		t.Error("device targeting wrong")
	}
	for _, bad := range []string{"nope", "transient=2", "die=0", "at=3", "at=x:lost", "at=3:meteor", "spike=fast", "seed=-1"} {
		if _, err := fault.ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) should fail", bad)
		}
	}
	empty, err := fault.ParsePlan("  ")
	if err != nil || empty.Enabled() {
		t.Errorf("empty spec = (%+v, %v), want disabled plan", empty, err)
	}
}

func TestErrorTaxonomy(t *testing.T) {
	cases := []struct {
		kind fault.Kind
		is   error
	}{
		{fault.Transient, fault.ErrTransient},
		{fault.Launch, fault.ErrLaunch},
		{fault.OOM, fault.ErrOOM},
		{fault.DeviceLost, fault.ErrDeviceLost},
	}
	for _, c := range cases {
		err := error(&fault.Error{Kind: c.kind, Op: fault.OpExecute, Seq: 3, Device: "d"})
		if !errors.Is(err, fault.ErrInjected) {
			t.Errorf("%v does not wrap ErrInjected", c.kind)
		}
		if !errors.Is(err, c.is) {
			t.Errorf("%v does not wrap its sentinel", c.kind)
		}
	}
	if fault.IsTransient(&fault.Error{Kind: fault.OOM}) {
		t.Error("OOM must not be retryable")
	}
	if !fault.IsTransient(&fault.Error{Kind: fault.Launch}) {
		t.Error("launch failures are retryable")
	}
}
