package fault

import (
	"math/rand"
	"sync"

	"github.com/adamant-db/adamant/internal/device"
	"github.com/adamant-db/adamant/internal/devmem"
	"github.com/adamant-db/adamant/internal/vclock"
	"github.com/adamant-db/adamant/internal/vec"
)

// Injection is one fault the injector fired, in schedule order.
type Injection struct {
	Op   Op
	Kind Kind
	Seq  int64 // 1-based device operation count at the injection
}

// Injector wraps a device.Device and injects the plan's faults at the ten
// plug-in interface boundaries. Faults fire before the wrapped operation
// runs, so a faulted operation never happened: no buffer was allocated, no
// data moved, no kernel ran. That keeps the fault model honest — retrying
// or failing over can never observe a half-applied operation.
//
// An Injector is safe for concurrent use; the decision stream is drawn
// under a lock from a per-device seeded RNG, so a single-threaded caller
// (the executor issues one query's device ops in a fixed order) always
// sees the same schedule.
type Injector struct {
	inner device.Device
	plan  *Plan

	mu       sync.Mutex
	rng      *rand.Rand
	ops      int64
	perOp    [numOps]int64
	dead     bool
	died     bool // DieAfterOps already triggered; a Revive sticks
	name     string
	injected []Injection
}

var _ device.Device = (*Injector)(nil)

// Wrap returns d wrapped with the plan's fault schedule. A nil or disabled
// plan still wraps (so call sites stay uniform) but never injects.
func Wrap(d device.Device, plan *Plan) *Injector {
	if plan == nil {
		plan = &Plan{}
	}
	name := d.Info().Name
	return &Injector{
		inner: d,
		plan:  plan,
		rng:   rand.New(rand.NewSource(int64(plan.seedFor(name)))),
		name:  name,
	}
}

// Inner returns the wrapped device.
func (in *Injector) Inner() device.Device { return in.inner }

// Injections returns the faults fired so far, in order.
func (in *Injector) Injections() []Injection {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]Injection, len(in.injected))
	copy(out, in.injected)
	return out
}

// Dead reports whether the device has been killed by a DeviceLost fault.
func (in *Injector) Dead() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.dead
}

// Kill marks the device lost immediately, outside any schedule.
func (in *Injector) Kill() {
	in.mu.Lock()
	in.dead = true
	in.mu.Unlock()
}

// Revive brings a lost device back (tests and operator intervention).
func (in *Injector) Revive() {
	in.mu.Lock()
	in.dead = false
	in.mu.Unlock()
}

// decide advances the schedule by one operation and returns the latency
// spike to apply and the fault to inject, if any. The RNG is drawn a fixed
// number of times per operation regardless of outcome, so one fault firing
// never shifts the schedule of later ones.
func (in *Injector) decide(op Op) (vclock.Duration, error) {
	in.mu.Lock()
	defer in.mu.Unlock()

	in.ops++
	in.perOp[op]++
	seq := in.ops

	if in.dead {
		return 0, &Error{Kind: DeviceLost, Op: op, Seq: seq, Device: in.name}
	}

	kind := KindNone
	// Fixed-order probability draws: one per applicable rate, always.
	if in.plan.PLatency > 0 && in.rng.Float64() < in.plan.PLatency {
		kind = Latency
	}
	if op.transferOp() && in.plan.PTransient > 0 && in.rng.Float64() < in.plan.PTransient {
		kind = Transient
	}
	if op.allocOp() && in.plan.POOM > 0 && in.rng.Float64() < in.plan.POOM {
		kind = OOM
	}
	if op == OpExecute && in.plan.PLaunch > 0 && in.rng.Float64() < in.plan.PLaunch {
		kind = Launch
	}
	// Scripted steps override the probabilistic draw at their op.
	for _, st := range in.plan.Script {
		if st.Op >= 0 {
			if st.Op == op && st.At == in.perOp[op] {
				kind = st.Kind
			}
		} else if st.At == seq {
			kind = st.Kind
		}
	}
	// Device death dominates everything. DieAfterOps is a threshold, not
	// an exact match: the op that crosses the mark may be an exempt
	// deletion (which advances the counter without consulting the
	// schedule), so the first faultable op at or past the mark kills the
	// device. The died flag makes the trigger fire exactly once, so a
	// Revive sticks.
	if in.plan.DieAfterOps > 0 && !in.died && seq >= in.plan.DieAfterOps {
		in.died = true
		kind = DeviceLost
	}

	switch kind {
	case KindNone:
		return 0, nil
	case Latency:
		in.injected = append(in.injected, Injection{Op: op, Kind: Latency, Seq: seq})
		return in.plan.spike(), nil
	case DeviceLost:
		in.dead = true
	}
	in.injected = append(in.injected, Injection{Op: op, Kind: kind, Seq: seq})
	return 0, &Error{Kind: kind, Op: op, Seq: seq, Device: in.name}
}

// Initialize implements device.Device.
func (in *Injector) Initialize() error {
	if _, err := in.decide(OpInitialize); err != nil {
		return err
	}
	return in.inner.Initialize()
}

// Info implements device.Device.
func (in *Injector) Info() device.Info { return in.inner.Info() }

// PlaceData implements device.Device.
func (in *Injector) PlaceData(data vec.Vector, ready vclock.Time) (devmem.BufferID, vclock.Time, error) {
	delay, err := in.decide(OpPlaceData)
	if err != nil {
		return 0, ready, err
	}
	return in.inner.PlaceData(data, ready.Add(delay))
}

// PlaceDataInto implements device.Device.
func (in *Injector) PlaceDataInto(id devmem.BufferID, off int, data vec.Vector, ready vclock.Time) (vclock.Time, error) {
	delay, err := in.decide(OpPlaceData)
	if err != nil {
		return ready, err
	}
	return in.inner.PlaceDataInto(id, off, data, ready.Add(delay))
}

// RetrieveData implements device.Device.
func (in *Injector) RetrieveData(id devmem.BufferID, off, n int, dst vec.Vector, ready vclock.Time) (vclock.Time, error) {
	delay, err := in.decide(OpRetrieveData)
	if err != nil {
		return ready, err
	}
	return in.inner.RetrieveData(id, off, n, dst, ready.Add(delay))
}

// PrepareMemory implements device.Device.
func (in *Injector) PrepareMemory(t vec.Type, n int, ready vclock.Time) (devmem.BufferID, vclock.Time, error) {
	delay, err := in.decide(OpPrepareMemory)
	if err != nil {
		return 0, ready, err
	}
	return in.inner.PrepareMemory(t, n, ready.Add(delay))
}

// AddPinnedMemory implements device.Device.
func (in *Injector) AddPinnedMemory(t vec.Type, n int, ready vclock.Time) (devmem.BufferID, vclock.Time, error) {
	delay, err := in.decide(OpAddPinnedMemory)
	if err != nil {
		return 0, ready, err
	}
	return in.inner.AddPinnedMemory(t, n, ready.Add(delay))
}

// CreateChunk implements device.Device.
func (in *Injector) CreateChunk(id devmem.BufferID, off, n int) (devmem.BufferID, error) {
	if _, err := in.decide(OpCreateChunk); err != nil {
		return 0, err
	}
	return in.inner.CreateChunk(id, off, n)
}

// TransformMemory implements device.Device.
func (in *Injector) TransformMemory(id devmem.BufferID, target devmem.Format, ready vclock.Time) (vclock.Time, error) {
	delay, err := in.decide(OpTransformMemory)
	if err != nil {
		return ready, err
	}
	return in.inner.TransformMemory(id, target, ready.Add(delay))
}

// DeleteMemory implements device.Device. Deletion never faults and keeps
// working on a dead device: the executor's leak barrier depends on it, and
// on real hardware freeing after a device reset is likewise host-side
// bookkeeping. Without this exemption a lost device would leak every
// buffer the query still owned, and memory accounting could never return
// to its pre-query baseline.
func (in *Injector) DeleteMemory(id devmem.BufferID) error {
	in.mu.Lock()
	in.ops++
	in.perOp[OpDeleteMemory]++
	in.mu.Unlock()
	return in.inner.DeleteMemory(id)
}

// PrepareKernel implements device.Device.
func (in *Injector) PrepareKernel(name, source string) error {
	if _, err := in.decide(OpPrepareKernel); err != nil {
		return err
	}
	return in.inner.PrepareKernel(name, source)
}

// Execute implements device.Device.
func (in *Injector) Execute(req device.ExecRequest, ready vclock.Time) (vclock.Time, error) {
	delay, err := in.decide(OpExecute)
	if err != nil {
		return ready, err
	}
	return in.inner.Execute(req, ready.Add(delay))
}

// Sync implements device.Device. The handshake is not one of the ten
// plug-in interfaces and passes through unfaulted.
func (in *Injector) Sync(ready vclock.Time) vclock.Time { return in.inner.Sync(ready) }

// Buffer implements device.Device.
func (in *Injector) Buffer(id devmem.BufferID) (*devmem.Buffer, error) { return in.inner.Buffer(id) }

// CopyEngine implements device.Device.
func (in *Injector) CopyEngine() *vclock.Timeline { return in.inner.CopyEngine() }

// ComputeEngine implements device.Device.
func (in *Injector) ComputeEngine() *vclock.Timeline { return in.inner.ComputeEngine() }

// MemStats implements device.Device.
func (in *Injector) MemStats() devmem.Stats { return in.inner.MemStats() }

// Stats implements device.Device.
func (in *Injector) Stats() device.Stats { return in.inner.Stats() }

// Reset implements device.Device. The wrapped device resets; the fault
// schedule and health state do not — a dead device stays dead until
// Revive, and the operation counter keeps advancing so a schedule spans
// resets.
func (in *Injector) Reset() { in.inner.Reset() }

// MarkPooled forwards device.PoolMarker to the wrapped device. Like
// DeleteMemory, pool ownership transitions are host-side bookkeeping and
// never fault; the buffer-pool layer relies on them during invalidation of
// a dead device.
func (in *Injector) MarkPooled(id devmem.BufferID, pooled bool) error {
	if pm, ok := in.inner.(device.PoolMarker); ok {
		return pm.MarkPooled(id, pooled)
	}
	return device.ErrNotSupported
}

// CheckMemAccounting forwards device.MemChecker to the wrapped device.
func (in *Injector) CheckMemAccounting() error {
	if mc, ok := in.inner.(device.MemChecker); ok {
		return mc.CheckMemAccounting()
	}
	return nil
}
