// Package fault provides deterministic fault injection for ADAMANT's
// device layer.
//
// The paper's runtime assumes devices never fail; a production co-processor
// deployment cannot. Transfers drop, kernel launches fail, device memory
// runs out, drivers hang, and whole cards fall off the bus mid-query. This
// package wraps any device.Device with an Injector that injects typed
// faults at the ten plug-in interface boundaries, driven by a reproducible
// Plan: a seed plus per-operation probabilities, an explicit step script,
// or both. Because the simulated SDKs are deterministic and the executor
// issues device operations in a fixed order, the same Plan against the
// same query always injects the same faults — a failing run is a repro
// script, not a flake.
//
// The runtime layer (package exec) reacts to the taxonomy: transient
// transfer and launch faults are retried with capped virtual-clock
// backoff; a lost device triggers failover onto a healthy fallback; OOM
// and exhausted retries surface as typed errors wrapping ErrInjected so a
// caller can always distinguish "the fault layer fired" from a wrong
// answer.
package fault

import (
	"errors"
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"

	"github.com/adamant-db/adamant/internal/vclock"
)

// Sentinel errors. Every injected fault wraps ErrInjected plus the
// kind-specific sentinel, so callers can match at either granularity with
// errors.Is.
var (
	// ErrInjected is the root sentinel: every error produced by an
	// Injector wraps it.
	ErrInjected = errors.New("fault: injected")
	// ErrTransient marks a transient transfer failure; the operation did
	// not happen and retrying it may succeed.
	ErrTransient = errors.New("fault: transient transfer failure")
	// ErrLaunch marks a kernel launch failure; the kernel did not run and
	// relaunching it may succeed.
	ErrLaunch = errors.New("fault: kernel launch failure")
	// ErrOOM marks an injected device out-of-memory; the allocation did
	// not happen and retrying without freeing memory will not help.
	ErrOOM = errors.New("fault: device out of memory")
	// ErrDeviceLost marks a dead device: every subsequent operation on it
	// fails until Revive. Only failover to another device helps.
	ErrDeviceLost = errors.New("fault: device lost")
)

// Kind classifies an injected fault.
type Kind int

// Fault kinds.
const (
	// KindNone injects nothing.
	KindNone Kind = iota
	// Transient fails one transfer; the operation is retryable.
	Transient
	// Launch fails one kernel launch; the launch is retryable.
	Launch
	// OOM fails one allocation as if device memory were exhausted.
	OOM
	// Latency stalls one operation by the plan's spike duration without
	// failing it.
	Latency
	// DeviceLost kills the device: the triggering operation and every
	// later one fail with ErrDeviceLost.
	DeviceLost
)

// String names the kind as used in -faults scripts.
func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case Transient:
		return "transient"
	case Launch:
		return "launch"
	case OOM:
		return "oom"
	case Latency:
		return "latency"
	case DeviceLost:
		return "lost"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

func parseKind(s string) (Kind, error) {
	switch s {
	case "transient":
		return Transient, nil
	case "launch":
		return Launch, nil
	case "oom":
		return OOM, nil
	case "latency":
		return Latency, nil
	case "lost", "die":
		return DeviceLost, nil
	default:
		return KindNone, fmt.Errorf("fault: unknown fault kind %q", s)
	}
}

// sentinel maps a kind to its matching sentinel error.
func (k Kind) sentinel() error {
	switch k {
	case Transient:
		return ErrTransient
	case Launch:
		return ErrLaunch
	case OOM:
		return ErrOOM
	case DeviceLost:
		return ErrDeviceLost
	default:
		return ErrInjected
	}
}

// Op names one of the device layer's interface boundaries (the paper's ten
// plug-in functions, in Go spelling).
type Op int

// Interface boundaries at which faults inject.
const (
	OpInitialize Op = iota
	OpPlaceData     // place_data: PlaceData and PlaceDataInto
	OpRetrieveData
	OpPrepareMemory
	OpAddPinnedMemory
	OpCreateChunk
	OpTransformMemory
	OpDeleteMemory
	OpPrepareKernel
	OpExecute
	numOps
)

// String names the op.
func (o Op) String() string {
	switch o {
	case OpInitialize:
		return "initialize"
	case OpPlaceData:
		return "place_data"
	case OpRetrieveData:
		return "retrieve_data"
	case OpPrepareMemory:
		return "prepare_memory"
	case OpAddPinnedMemory:
		return "add_pinned_memory"
	case OpCreateChunk:
		return "create_chunk"
	case OpTransformMemory:
		return "transform_memory"
	case OpDeleteMemory:
		return "delete_memory"
	case OpPrepareKernel:
		return "prepare_kernel"
	case OpExecute:
		return "execute"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// transferOp reports whether the op moves data (transient faults apply).
func (o Op) transferOp() bool {
	return o == OpPlaceData || o == OpRetrieveData || o == OpTransformMemory
}

// allocOp reports whether the op allocates device memory (OOM applies).
func (o Op) allocOp() bool {
	return o == OpPrepareMemory || o == OpAddPinnedMemory
}

// Step is one entry of an explicit fault script: at the At-th device
// operation (1-based, counted across all ops, in issue order), inject Kind.
// When Op is non-negative the step counts and fires only on that operation
// type.
type Step struct {
	// At is the 1-based operation index the step fires at. Counted over
	// all operations when Op < 0, over operations of type Op otherwise.
	At int64
	// Op restricts the step to one interface boundary; negative means any.
	Op Op
	// Kind is the fault to inject.
	Kind Kind
}

// Plan is a reproducible fault schedule. The zero value injects nothing.
// The same Plan (same seed, rates and script) against the same sequence of
// device operations injects exactly the same faults.
type Plan struct {
	// Seed seeds the per-device random stream for the probabilistic
	// rates. Two devices with different names draw from different streams
	// derived from this seed, so multi-device runs stay deterministic
	// regardless of scheduling.
	Seed uint64

	// PTransient is the per-transfer probability of a transient failure
	// (place_data, retrieve_data, transform_memory).
	PTransient float64
	// PLaunch is the per-launch probability of a kernel launch failure.
	PLaunch float64
	// POOM is the per-allocation probability of an injected OOM
	// (prepare_memory, add_pinned_memory).
	POOM float64
	// PLatency is the per-operation probability of a latency spike of
	// SpikeDuration on any time-charged operation.
	PLatency float64
	// SpikeDuration is the virtual stall per latency spike (default
	// 100µs when PLatency > 0 or a Latency step fires).
	SpikeDuration vclock.Duration

	// DieAfterOps kills the device at its N-th operation (1-based);
	// zero means never.
	DieAfterOps int64

	// Script lists explicit steps, evaluated alongside the probabilistic
	// rates. Scripted steps take precedence at the op they name.
	Script []Step

	// Devices restricts the plan to devices whose name contains one of
	// the given substrings. Empty means every wrapped device.
	Devices []string
}

// AppliesTo reports whether the plan targets the named device.
func (p *Plan) AppliesTo(deviceName string) bool {
	if p == nil {
		return false
	}
	if len(p.Devices) == 0 {
		return true
	}
	for _, d := range p.Devices {
		if strings.Contains(deviceName, d) {
			return true
		}
	}
	return false
}

// Enabled reports whether the plan can inject anything at all.
func (p *Plan) Enabled() bool {
	if p == nil {
		return false
	}
	return p.PTransient > 0 || p.PLaunch > 0 || p.POOM > 0 || p.PLatency > 0 ||
		p.DieAfterOps > 0 || len(p.Script) > 0
}

// spike returns the configured latency spike duration with its default.
func (p *Plan) spike() vclock.Duration {
	if p.SpikeDuration > 0 {
		return p.SpikeDuration
	}
	return 100 * vclock.Microsecond
}

// seedFor derives the per-device RNG seed: the plan seed mixed with the
// device name, so each device draws an independent deterministic stream.
func (p *Plan) seedFor(deviceName string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(deviceName))
	return p.Seed ^ h.Sum64() ^ 0x9e3779b97f4a7c15
}

// ParsePlan parses the -faults CLI spec: a comma-separated list of
// key=value fields.
//
//	seed=N            RNG seed for the probabilistic rates
//	transient=P       per-transfer transient failure probability
//	launch=P          per-launch kernel failure probability
//	oom=P             per-allocation OOM probability
//	latency=P         per-operation latency spike probability
//	spike=DUR         latency spike duration (Go duration, e.g. 200us)
//	die=N             the device dies at its N-th operation
//	at=N:KIND         script step: inject KIND at operation N
//	                  (KIND: transient, launch, oom, latency, lost)
//	dev=NAME          only inject on devices whose name contains NAME
//
// Example: "seed=7,transient=0.01,die=500,dev=cuda".
func ParsePlan(spec string) (*Plan, error) {
	p := &Plan{}
	if strings.TrimSpace(spec) == "" {
		return p, nil
	}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return nil, fmt.Errorf("fault: bad -faults field %q (want key=value)", field)
		}
		switch key {
		case "seed":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: bad seed %q", val)
			}
			p.Seed = n
		case "transient", "launch", "oom", "latency":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 || f > 1 {
				return nil, fmt.Errorf("fault: bad probability %q for %s", val, key)
			}
			switch key {
			case "transient":
				p.PTransient = f
			case "launch":
				p.PLaunch = f
			case "oom":
				p.POOM = f
			case "latency":
				p.PLatency = f
			}
		case "spike":
			d, err := parseDuration(val)
			if err != nil {
				return nil, err
			}
			p.SpikeDuration = d
		case "die":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("fault: bad die op count %q", val)
			}
			p.DieAfterOps = n
		case "at":
			atStr, kindStr, ok := strings.Cut(val, ":")
			if !ok {
				return nil, fmt.Errorf("fault: bad step %q (want at=N:kind)", field)
			}
			n, err := strconv.ParseInt(atStr, 10, 64)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("fault: bad step index %q", atStr)
			}
			k, err := parseKind(kindStr)
			if err != nil {
				return nil, err
			}
			p.Script = append(p.Script, Step{At: n, Op: -1, Kind: k})
		case "dev":
			p.Devices = append(p.Devices, val)
		default:
			return nil, fmt.Errorf("fault: unknown -faults key %q", key)
		}
	}
	return p, nil
}

// parseDuration accepts Go duration syntax and converts to virtual time.
func parseDuration(s string) (vclock.Duration, error) {
	var total vclock.Duration
	rest := s
	for rest != "" {
		i := 0
		for i < len(rest) && (rest[i] >= '0' && rest[i] <= '9') {
			i++
		}
		if i == 0 {
			return 0, fmt.Errorf("fault: bad duration %q", s)
		}
		n, err := strconv.ParseInt(rest[:i], 10, 64)
		if err != nil {
			return 0, fmt.Errorf("fault: bad duration %q", s)
		}
		rest = rest[i:]
		j := 0
		for j < len(rest) && (rest[j] < '0' || rest[j] > '9') {
			j++
		}
		var unit vclock.Duration
		switch rest[:j] {
		case "ns":
			unit = vclock.Nanosecond
		case "us", "µs":
			unit = vclock.Microsecond
		case "ms":
			unit = vclock.Millisecond
		case "s":
			unit = vclock.Second
		default:
			return 0, fmt.Errorf("fault: bad duration unit in %q", s)
		}
		total += vclock.Duration(n) * unit
		rest = rest[j:]
	}
	return total, nil
}

// Error is one injected fault, carrying the taxonomy for errors.Is
// matching and the schedule position for reproduction.
type Error struct {
	// Kind is the injected fault kind.
	Kind Kind
	// Op is the interface boundary the fault fired at.
	Op Op
	// Seq is the device's 1-based operation count when the fault fired.
	Seq int64
	// Device is the faulted device's name.
	Device string
}

// Error implements error.
func (e *Error) Error() string {
	return fmt.Sprintf("fault: injected %s at %s op %d on %s", e.Kind, e.Op, e.Seq, e.Device)
}

// Unwrap exposes both the root sentinel and the kind sentinel, so
// errors.Is(err, ErrInjected) and errors.Is(err, ErrTransient) both hold.
func (e *Error) Unwrap() []error {
	return []error{ErrInjected, e.Kind.sentinel()}
}

// Injected reports whether err originates from an Injector.
func Injected(err error) bool { return errors.Is(err, ErrInjected) }

// IsTransient reports whether err is worth retrying: a transient transfer
// failure or a kernel launch failure. OOM and device loss are not.
func IsTransient(err error) bool {
	return errors.Is(err, ErrTransient) || errors.Is(err, ErrLaunch)
}
