package kernels

import (
	"github.com/adamant-db/adamant/internal/vec"
)

// FillI64 writes a constant into every element of an int64 buffer. The
// runtime uses it to initialize pipeline-breaker accumulators (e.g. the
// identity of a MIN aggregate) before the first chunk. Args: out(I64);
// params: value.
var FillI64 = register(&Kernel{
	Name:    "fill_i64",
	NArgs:   1,
	NParams: 1,
	Source:  "__kernel fill_i64(out, v) { out[i] = v; }",
	Fn: func(ctx *Ctx, args []vec.Vector, params []int64) error {
		out := args[0].I64()
		v := params[0]
		parallelRange(ctx, len(out), 1, func(s, e int) {
			for i := s; i < e; i++ {
				out[i] = v
			}
		})
		return nil
	},
	Cost: streamCost,
})
