package kernels

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/adamant-db/adamant/internal/vec"
)

func newTable(t *testing.T, distinct int, payloadInit int64) vec.Vector {
	t.Helper()
	table := vec.New(vec.Int64, HashTableLen(distinct))
	launch(t, "hash_table_init", []vec.Vector{table}, payloadInit)
	return table
}

func TestHashTableLen(t *testing.T) {
	for _, c := range []struct{ n, want int }{
		{0, 32}, {1, 32}, {8, 32}, {9, 64}, {1000, 4096},
	} {
		if got := HashTableLen(c.n); got != c.want {
			t.Errorf("HashTableLen(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestHashTableInit(t *testing.T) {
	table := newTable(t, 4, 42)
	s := table.I64()
	for i := 0; i < len(s); i += 2 {
		if s[i] != math.MinInt64 || s[i+1] != 42 {
			t.Fatalf("slot %d = (%d,%d)", i/2, s[i], s[i+1])
		}
	}
}

func TestHashTableValidation(t *testing.T) {
	k := mustLookup(t, "hash_table_init")
	// Odd length is not a table.
	if err := k.Fn(testCtx, []vec.Vector{vec.New(vec.Int64, 33)}, nil); err == nil {
		t.Error("expected error for odd table length")
	}
	// Non-power-of-two slot count.
	if err := k.Fn(testCtx, []vec.Vector{vec.New(vec.Int64, 24)}, nil); err == nil {
		t.Error("expected error for non-pow2 slots")
	}
}

// Property: hash_build_pk + hash_probe recovers exactly the rows of the
// build side, matching a map-based join.
func TestBuildProbeProperty(t *testing.T) {
	f := func(rawBuild []int32, rawProbe []int32) bool {
		// Unique build keys.
		seen := map[int32]bool{}
		var build []int32
		for _, k := range rawBuild {
			if !seen[k] {
				seen[k] = true
				build = append(build, k)
			}
		}
		if len(build) == 0 {
			return true
		}
		table := vec.New(vec.Int64, HashTableLen(len(build)))
		init := mustLookup(t, "hash_table_init")
		if err := init.Fn(testCtx, []vec.Vector{table}, nil); err != nil {
			return false
		}
		bk := mustLookup(t, "hash_build_pk_i32")
		if err := bk.Fn(testCtx, []vec.Vector{vec.FromInt32(build), table}, []int64{100}); err != nil {
			return false
		}

		rowOf := map[int32]int64{}
		for i, k := range build {
			rowOf[k] = 100 + int64(i)
		}

		left := vec.New(vec.Int32, len(rawProbe))
		right := vec.New(vec.Int64, len(rawProbe))
		count := vec.New(vec.Int64, 1)
		pk := mustLookup(t, "hash_probe_i32")
		if err := pk.Fn(testCtx, []vec.Vector{vec.FromInt32(rawProbe), table, left, right, count}, []int64{1000}); err != nil {
			return false
		}

		// Pairs come in arbitrary order; verify as a set.
		got := map[int64]int64{}
		for i := 0; i < int(count.I64()[0]); i++ {
			got[int64(left.I32()[i])] = right.I64()[i]
		}
		var wantCount int64
		for i, k := range rawProbe {
			row, hit := rowOf[k]
			if hit {
				wantCount++
				if got[int64(1000+i)] != row {
					return false
				}
			} else if _, present := got[int64(1000+i)]; present {
				return false
			}
		}
		return count.I64()[0] == wantCount
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: hash_probe_exists marks exactly the keys present in the set.
func TestSemiJoinProperty(t *testing.T) {
	f := func(build []int32, probe []int32) bool {
		table := vec.New(vec.Int64, HashTableLen(len(build)+1))
		init := mustLookup(t, "hash_table_init")
		if err := init.Fn(testCtx, []vec.Vector{table}, nil); err != nil {
			return false
		}
		bk := mustLookup(t, "hash_build_set_i32")
		if err := bk.Fn(testCtx, []vec.Vector{vec.FromInt32(build), table}, nil); err != nil {
			return false
		}
		set := map[int32]bool{}
		for _, k := range build {
			set[k] = true
		}
		bm := vec.New(vec.Bits, len(probe))
		pk := mustLookup(t, "hash_probe_exists_i32")
		if err := pk.Fn(testCtx, []vec.Vector{vec.FromInt32(probe), table, bm}, nil); err != nil {
			return false
		}
		for i, k := range probe {
			if bm.Bit(i) != set[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: hash_agg sums match a map-based group-by, after extraction.
func TestHashAggProperty(t *testing.T) {
	f := func(raw []uint16, vals []int16) bool {
		n := len(raw)
		if len(vals) < n {
			n = len(vals)
		}
		if n == 0 {
			return true
		}
		keys := make([]int32, n)
		values := make([]int64, n)
		want := map[int64]int64{}
		for i := 0; i < n; i++ {
			keys[i] = int32(raw[i] % 64)
			values[i] = int64(vals[i])
			want[int64(keys[i])] += values[i]
		}

		table := vec.New(vec.Int64, HashTableLen(64))
		init := mustLookup(t, "hash_table_init")
		if err := init.Fn(testCtx, []vec.Vector{table}, nil); err != nil {
			return false
		}
		agg := mustLookup(t, "hash_agg_i32_i64")
		if err := agg.Fn(testCtx, []vec.Vector{vec.FromInt32(keys), vec.FromInt64(values), table},
			[]int64{int64(AggSum), 64}); err != nil {
			return false
		}

		outK := vec.New(vec.Int64, 64)
		outV := vec.New(vec.Int64, 64)
		count := vec.New(vec.Int64, 1)
		ext := mustLookup(t, "hash_extract")
		if err := ext.Fn(testCtx, []vec.Vector{table, outK, outV, count}, nil); err != nil {
			return false
		}
		if int(count.I64()[0]) != len(want) {
			return false
		}
		for i := 0; i < int(count.I64()[0]); i++ {
			if want[outK.I64()[i]] != outV.I64()[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestHashAggMinMax(t *testing.T) {
	keys := vec.FromInt32([]int32{1, 2, 1, 2, 1})
	values := vec.FromInt64([]int64{5, -3, 0, 7, 2})

	table := newTable(t, 2, math.MaxInt64)
	launch(t, "hash_agg_i32_i64", []vec.Vector{keys, values, table}, int64(AggMin), 2)
	if got := extractMap(t, table, 2); got[1] != 0 || got[2] != -3 {
		t.Errorf("min groups = %v", got)
	}

	table = newTable(t, 2, math.MinInt64)
	launch(t, "hash_agg_i32_i64", []vec.Vector{keys, values, table}, int64(AggMax), 2)
	if got := extractMap(t, table, 2); got[1] != 5 || got[2] != 7 {
		t.Errorf("max groups = %v", got)
	}
}

func TestHashAggCount(t *testing.T) {
	keys := vec.FromInt32([]int32{4, 4, 5, 4})
	table := newTable(t, 2, 0)
	launch(t, "hash_agg_count_i32", []vec.Vector{keys, table}, 2)
	launch(t, "hash_agg_count_i32", []vec.Vector{keys, table}, 2)
	got := extractMap(t, table, 2)
	if got[4] != 6 || got[5] != 2 {
		t.Errorf("counts = %v (two accumulating launches)", got)
	}
}

func extractMap(t *testing.T, table vec.Vector, maxGroups int) map[int64]int64 {
	t.Helper()
	outK := vec.New(vec.Int64, maxGroups)
	outV := vec.New(vec.Int64, maxGroups)
	count := vec.New(vec.Int64, 1)
	launch(t, "hash_extract", []vec.Vector{table, outK, outV, count})
	m := map[int64]int64{}
	for i := 0; i < int(count.I64()[0]); i++ {
		m[outK.I64()[i]] = outV.I64()[i]
	}
	return m
}

func TestHashTableFull(t *testing.T) {
	table := newTable(t, 4, 0) // 32 elems = 16 slots
	keys := make([]int32, 20)  // more distinct keys than slots
	for i := range keys {
		keys[i] = int32(i)
	}
	k := mustLookup(t, "hash_build_set_i32")
	if err := k.Fn(testCtx, []vec.Vector{vec.FromInt32(keys), table}, nil); err == nil {
		t.Error("expected table-full error")
	}
}

func TestHashProbeOverflow(t *testing.T) {
	table := newTable(t, 4, 0)
	launch(t, "hash_build_pk_i32", []vec.Vector{vec.FromInt32([]int32{1, 2, 3}), table}, 0)
	probe := vec.FromInt32([]int32{1, 2, 3})
	left := vec.New(vec.Int32, 1) // too small
	right := vec.New(vec.Int64, 1)
	count := vec.New(vec.Int64, 1)
	k := mustLookup(t, "hash_probe_i32")
	if err := k.Fn(testCtx, []vec.Vector{probe, table, left, right, count}, []int64{0}); err == nil {
		t.Error("expected probe overflow error")
	}
}

// Property: chunked builds (two launches with different bases) equal one
// whole build.
func TestChunkedBuildEquivalence(t *testing.T) {
	f := func(raw []int32) bool {
		seen := map[int32]bool{}
		var keys []int32
		for _, k := range raw {
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
		if len(keys) < 2 {
			return true
		}
		mid := len(keys) / 2

		whole := vec.New(vec.Int64, HashTableLen(len(keys)))
		chunked := vec.New(vec.Int64, HashTableLen(len(keys)))
		init := mustLookup(t, "hash_table_init")
		build := mustLookup(t, "hash_build_pk_i32")
		init.Fn(testCtx, []vec.Vector{whole}, nil)
		init.Fn(testCtx, []vec.Vector{chunked}, nil)
		if err := build.Fn(testCtx, []vec.Vector{vec.FromInt32(keys), whole}, []int64{0}); err != nil {
			return false
		}
		if err := build.Fn(testCtx, []vec.Vector{vec.FromInt32(keys[:mid]), chunked}, []int64{0}); err != nil {
			return false
		}
		if err := build.Fn(testCtx, []vec.Vector{vec.FromInt32(keys[mid:]), chunked}, []int64{int64(mid)}); err != nil {
			return false
		}

		// Probe both with all keys; results must agree.
		for _, tab := range []vec.Vector{whole, chunked} {
			_ = tab
		}
		bm1 := vec.New(vec.Bits, len(keys))
		bm2 := vec.New(vec.Bits, len(keys))
		probe := mustLookup(t, "hash_probe_exists_i32")
		probe.Fn(testCtx, []vec.Vector{vec.FromInt32(keys), whole, bm1}, nil)
		probe.Fn(testCtx, []vec.Vector{vec.FromInt32(keys), chunked, bm2}, nil)
		return vec.Equal(bm1, bm2) && bm1.Popcount() == len(keys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
