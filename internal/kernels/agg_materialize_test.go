package kernels

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/adamant-db/adamant/internal/vec"
)

func TestAggOps(t *testing.T) {
	cases := []struct {
		op   AggOp
		want int64
	}{
		{AggSum, 10},
		{AggCount, 4},
		{AggMin, -5},
		{AggMax, 9},
	}
	data := []int64{3, -5, 9, 3}
	for _, c := range cases {
		out := vec.New(vec.Int64, 1)
		out.I64()[0] = c.op.identity()
		launch(t, "agg_block_i64", []vec.Vector{vec.FromInt64(data), out}, int64(c.op))
		if out.I64()[0] != c.want {
			t.Errorf("%v = %d, want %d", c.op, out.I64()[0], c.want)
		}
	}
}

func TestAggAccumulatesAcrossChunks(t *testing.T) {
	out := vec.New(vec.Int64, 1)
	launch(t, "agg_block_i32", []vec.Vector{vec.FromInt32([]int32{1, 2}), out}, int64(AggSum))
	launch(t, "agg_block_i32", []vec.Vector{vec.FromInt32([]int32{3, 4}), out}, int64(AggSum))
	if out.I64()[0] != 10 {
		t.Errorf("chunked sum = %d, want 10", out.I64()[0])
	}

	// Min folds correctly across chunks when seeded with its identity.
	m := vec.New(vec.Int64, 1)
	m.I64()[0] = math.MaxInt64
	launch(t, "agg_block_i32", []vec.Vector{vec.FromInt32([]int32{5, 9}), m}, int64(AggMin))
	launch(t, "agg_block_i32", []vec.Vector{vec.FromInt32([]int32{7, 3}), m}, int64(AggMin))
	if m.I64()[0] != 3 {
		t.Errorf("chunked min = %d, want 3", m.I64()[0])
	}
}

func TestAggCountBits(t *testing.T) {
	bm := vec.New(vec.Bits, 130)
	bm.SetBit(0, true)
	bm.SetBit(64, true)
	bm.SetBit(129, true)
	out := vec.New(vec.Int64, 1)
	launch(t, "agg_count_bits", []vec.Vector{bm, out})
	launch(t, "agg_count_bits", []vec.Vector{bm, out})
	if out.I64()[0] != 6 {
		t.Errorf("count = %d, want 6 (two accumulating launches)", out.I64()[0])
	}
}

// Property: agg_block_i32 sums agree with the naive loop.
func TestAggSumProperty(t *testing.T) {
	f := func(data []int32) bool {
		out := vec.New(vec.Int64, 1)
		k := mustLookup(t, "agg_block_i32")
		if err := k.Fn(testCtx, []vec.Vector{vec.FromInt32(data), out}, []int64{int64(AggSum)}); err != nil {
			return false
		}
		var want int64
		for _, v := range data {
			want += int64(v)
		}
		return out.I64()[0] == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: materialize through a bitmap keeps exactly the selected values
// in order, with the count reported.
func TestMaterializeBitmapProperty(t *testing.T) {
	f := func(data []int32, selSeed uint64) bool {
		n := len(data)
		bm := vec.New(vec.Bits, n)
		state := selSeed
		var want []int32
		for i := 0; i < n; i++ {
			state = state*6364136223846793005 + 1442695040888963407
			if state>>63 == 1 {
				bm.SetBit(i, true)
				want = append(want, data[i])
			}
		}
		out := vec.New(vec.Int32, n)
		count := vec.New(vec.Int64, 1)
		k := mustLookup(t, "materialize_bitmap_i32")
		if err := k.Fn(testCtx, []vec.Vector{vec.FromInt32(data), bm, out, count}, nil); err != nil {
			return false
		}
		if count.I64()[0] != int64(len(want)) {
			return false
		}
		for i, w := range want {
			if out.I32()[i] != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: filter then materialize equals a single-pass select.
func TestFilterMaterializeRoundtrip(t *testing.T) {
	f := func(data []int32, lo int32) bool {
		n := len(data)
		in := vec.FromInt32(data)
		bm := vec.New(vec.Bits, n)
		fk := mustLookup(t, "filter_bitmap_i32")
		if err := fk.Fn(testCtx, []vec.Vector{in, bm}, []int64{int64(CmpGe), int64(lo), 0}); err != nil {
			return false
		}
		out := vec.New(vec.Int32, n)
		count := vec.New(vec.Int64, 1)
		mk := mustLookup(t, "materialize_bitmap_i32")
		if err := mk.Fn(testCtx, []vec.Vector{in, bm, out, count}, nil); err != nil {
			return false
		}
		var want []int32
		for _, v := range data {
			if v >= lo {
				want = append(want, v)
			}
		}
		if count.I64()[0] != int64(len(want)) {
			return false
		}
		for i, w := range want {
			if out.I32()[i] != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMaterializeI64(t *testing.T) {
	data := vec.FromInt64([]int64{10, 20, 30, 40})
	bm := vec.New(vec.Bits, 4)
	bm.SetBit(1, true)
	bm.SetBit(3, true)
	out := vec.New(vec.Int64, 4)
	count := vec.New(vec.Int64, 1)
	launch(t, "materialize_bitmap_i64", []vec.Vector{data, bm, out, count})
	if count.I64()[0] != 2 || out.I64()[0] != 20 || out.I64()[1] != 40 {
		t.Errorf("materialize i64: count=%d out=%v", count.I64()[0], out.I64()[:2])
	}
}

func TestMaterializePos(t *testing.T) {
	values := vec.FromInt32([]int32{100, 200, 300, 400})
	pos := vec.FromInt32([]int32{3, 0, 3})
	out := vec.New(vec.Int32, 3)
	launch(t, "materialize_pos_i32", []vec.Vector{values, pos, out})
	if out.I32()[0] != 400 || out.I32()[1] != 100 || out.I32()[2] != 400 {
		t.Errorf("gather = %v", out.I32())
	}

	v64 := vec.FromInt64([]int64{5, 6, 7})
	out64 := vec.New(vec.Int64, 2)
	launch(t, "materialize_pos_i64", []vec.Vector{v64, vec.FromInt32([]int32{2, 1}), out64})
	if out64.I64()[0] != 7 || out64.I64()[1] != 6 {
		t.Errorf("gather i64 = %v", out64.I64())
	}

	// Out-of-range positions fail loudly.
	k := mustLookup(t, "materialize_pos_i32")
	if err := k.Fn(testCtx, []vec.Vector{values, vec.FromInt32([]int32{9}), vec.New(vec.Int32, 1)}, nil); err == nil {
		t.Error("expected out-of-range error")
	}
}

// Property: prefix_sum_i32 is the exclusive scan.
func TestPrefixSumProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		data := make([]int32, len(raw))
		for i, r := range raw {
			data[i] = int32(r)
		}
		out := vec.New(vec.Int32, len(data))
		k := mustLookup(t, "prefix_sum_i32")
		if err := k.Fn(testCtx, []vec.Vector{vec.FromInt32(data), out}, nil); err != nil {
			return false
		}
		var acc int32
		for i, v := range data {
			if out.I32()[i] != acc {
				return false
			}
			acc += v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: prefix_sum_bits[i] counts the set bits strictly before i, and
// agrees with prefix_sum_i32 over the 0/1 expansion.
func TestPrefixSumBitsProperty(t *testing.T) {
	f := func(words []uint64) bool {
		if len(words) == 0 {
			return true
		}
		n := len(words) * 64
		bm := vec.FromBits(words, n)
		out := vec.New(vec.Int32, n)
		k := mustLookup(t, "prefix_sum_bits")
		if err := k.Fn(testCtx, []vec.Vector{bm, out}, nil); err != nil {
			return false
		}
		var acc int32
		for i := 0; i < n; i++ {
			if out.I32()[i] != acc {
				return false
			}
			if bm.Bit(i) {
				acc++
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSortAgg(t *testing.T) {
	// Sorted keys with 3 groups; pxsum is the group index per row.
	keys := vec.FromInt32([]int32{5, 5, 8, 8, 8, 9})
	values := vec.FromInt64([]int64{1, 2, 10, 20, 30, 100})
	pxsum := vec.FromInt32([]int32{0, 0, 1, 1, 1, 2})
	outKeys := vec.New(vec.Int32, 3)
	outAggs := vec.New(vec.Int64, 3)
	count := vec.New(vec.Int64, 1)
	launch(t, "sort_agg_i32_i64", []vec.Vector{keys, values, pxsum, outKeys, outAggs, count}, int64(AggSum))
	if count.I64()[0] != 3 {
		t.Fatalf("groups = %d", count.I64()[0])
	}
	wantK := []int32{5, 8, 9}
	wantA := []int64{3, 60, 100}
	for i := range wantK {
		if outKeys.I32()[i] != wantK[i] || outAggs.I64()[i] != wantA[i] {
			t.Errorf("group %d = (%d,%d), want (%d,%d)", i, outKeys.I32()[i], outAggs.I64()[i], wantK[i], wantA[i])
		}
	}
}

func TestSortAggEmpty(t *testing.T) {
	count := vec.New(vec.Int64, 1)
	count.I64()[0] = -1
	launch(t, "sort_agg_i32_i64", []vec.Vector{
		vec.New(vec.Int32, 0), vec.New(vec.Int64, 0), vec.New(vec.Int32, 0),
		vec.New(vec.Int32, 1), vec.New(vec.Int64, 1), count,
	}, int64(AggSum))
	if count.I64()[0] != 0 {
		t.Errorf("empty sort_agg groups = %d", count.I64()[0])
	}
}

// Property: boundary indicator + inclusive prefix sum assign every row of
// a sorted key column its group index.
func TestGroupIndexProperty(t *testing.T) {
	f := func(runs []uint8) bool {
		var keys []int32
		key := int32(0)
		for _, r := range runs {
			n := int(r%5) + 1
			for i := 0; i < n; i++ {
				keys = append(keys, key)
			}
			key += int32(r%3) + 1 // strictly increasing sorted keys
		}
		if len(keys) == 0 {
			return true
		}
		in := vec.FromInt32(keys)
		boundary := vec.New(vec.Int32, len(keys))
		bk := mustLookup(t, "map_boundary_i32")
		if err := bk.Fn(testCtx, []vec.Vector{in, boundary}, nil); err != nil {
			return false
		}
		idx := vec.New(vec.Int32, len(keys))
		pk := mustLookup(t, "prefix_sum_inclusive_i32")
		if err := pk.Fn(testCtx, []vec.Vector{boundary, idx}, nil); err != nil {
			return false
		}
		want := int32(0)
		for i := range keys {
			if i > 0 && keys[i] != keys[i-1] {
				want++
			}
			if idx.I32()[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: inclusive scan = exclusive scan + input.
func TestInclusiveScanProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		data := make([]int32, len(raw))
		for i, r := range raw {
			data[i] = int32(r)
		}
		in := vec.FromInt32(data)
		ex := vec.New(vec.Int32, len(data))
		inc := vec.New(vec.Int32, len(data))
		if err := mustLookup(t, "prefix_sum_i32").Fn(testCtx, []vec.Vector{in, ex}, nil); err != nil {
			return false
		}
		if err := mustLookup(t, "prefix_sum_inclusive_i32").Fn(testCtx, []vec.Vector{in, inc}, nil); err != nil {
			return false
		}
		for i := range data {
			if inc.I32()[i] != ex.I32()[i]+data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBitmapNotKernel(t *testing.T) {
	n := 70
	in := vec.New(vec.Bits, n)
	for i := 0; i < n; i += 3 {
		in.SetBit(i, true)
	}
	out := vec.New(vec.Bits, n)
	launch(t, "bitmap_not", []vec.Vector{in, out})
	for i := 0; i < n; i++ {
		if out.Bit(i) == in.Bit(i) {
			t.Fatalf("bit %d not complemented", i)
		}
	}
}
