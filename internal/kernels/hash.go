package kernels

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"github.com/adamant-db/adamant/internal/vclock"
	"github.com/adamant-db/adamant/internal/vec"
)

// Hash tables are stored in plain int64 device buffers as interleaved
// (key, payload) slot pairs with linear probing, exactly the single shared
// global-memory table with atomic insertion the paper profiles in Figure 9.
// The empty-slot sentinel is math.MinInt64; HashTableInit must run once
// before the first build chunk.

// hashEmpty marks a free slot.
const hashEmpty = math.MinInt64

// HashTableLen returns the int64 element count of a table buffer sized for
// n distinct keys at 50% maximum load.
func HashTableLen(n int) int {
	slots := 16
	for slots < 2*n {
		slots <<= 1
	}
	return 2 * slots
}

func hashSlot(key int64, slots int) int {
	h := uint64(key) * 0x9E3779B97F4A7C15
	return int(h & uint64(slots-1))
}

func tableOf(v vec.Vector) ([]int64, int, error) {
	t := v.I64()
	if len(t) == 0 || len(t)%2 != 0 || (len(t)/2)&(len(t)/2-1) != 0 {
		return nil, 0, fmt.Errorf("%w: hash table length %d is not 2*power-of-two", ErrBadArgs, len(t))
	}
	return t, len(t) / 2, nil
}

// HashTableInit fills a table buffer with empty slots. Payload cells start
// at the optional params[0] (pass the aggregate identity before HASH_AGG
// min/max builds; defaults to 0). Args: table(I64); params: [payloadInit].
var HashTableInit = register(&Kernel{
	Name:   "hash_table_init",
	NArgs:  1,
	Source: "__kernel hash_table_init(t, init) { t.key[s] = EMPTY; t.val[s] = init; }",
	Fn: func(ctx *Ctx, args []vec.Vector, params []int64) error {
		t, slots, err := tableOf(args[0])
		if err != nil {
			return err
		}
		var payloadInit int64
		if len(params) > 0 {
			payloadInit = params[0]
		}
		parallelRange(ctx, slots, 1, func(s, e int) {
			for i := s; i < e; i++ {
				t[2*i] = hashEmpty
				t[2*i+1] = payloadInit
			}
		})
		return nil
	},
	Cost: streamCost,
})

// buildCost prices the contended insertion path of HASH_BUILD / HASH_AGG:
// one atomic CAS per input row plus scattered writes. Contention grows with
// the shared global table's size — larger tables thrash more cache lines —
// which is the degradation Figure 9(d) shows.
func buildCost(m CostModel, n, slots int64, extra float64) vclock.Duration {
	contention := 1 + extra
	if slots > 1<<12 {
		doublings := math.Log2(float64(slots) / float64(int64(1)<<12))
		contention += m.SDK.BuildScalePenalty * doublings
	}
	return m.SDK.Atomic(m.Spec, n, contention) + m.SDK.Random(m.Spec, 16*n)
}

// insert performs a lock-free linear-probing insert, invoking onClaim with
// the payload cell once the key's slot is found or claimed. It reports
// false when the table is full (every slot probed and occupied by other
// keys), which kernels surface as an undersized-table error rather than
// spinning.
func insert(t []int64, slots int, key int64, onClaim func(payloadIdx int)) bool {
	slot := hashSlot(key, slots)
	for probes := 0; probes < slots; probes++ {
		k := atomic.LoadInt64(&t[2*slot])
		if k == key {
			onClaim(2*slot + 1)
			return true
		}
		if k == hashEmpty {
			if atomic.CompareAndSwapInt64(&t[2*slot], hashEmpty, key) {
				onClaim(2*slot + 1)
				return true
			}
			probes-- // lost the race; re-read this slot
			continue
		}
		slot = (slot + 1) & (slots - 1)
	}
	return false
}

// errTableFull is the shared overflow error for insertion kernels.
var errTableFull = fmt.Errorf("%w: hash table full (undersized for build side)", ErrBadArgs)

// lookup returns the payload cell index for key, or -1 if absent.
func lookup(t []int64, slots int, key int64) int {
	slot := hashSlot(key, slots)
	for probes := 0; probes < slots; probes++ {
		k := atomic.LoadInt64(&t[2*slot])
		if k == key {
			return 2*slot + 1
		}
		if k == hashEmpty {
			return -1
		}
		slot = (slot + 1) & (slots - 1)
	}
	return -1
}

// HashBuildPKI32 populates a table mapping each key to its global row
// position (the HASH_BUILD primitive for a primary-key build side). The
// base parameter is the chunk's global row offset, so chunked builds
// produce global positions. Duplicate keys keep the last writer. Args:
// keys(I32), table(I64); params: base.
var HashBuildPKI32 = register(&Kernel{
	Name:    "hash_build_pk_i32",
	NArgs:   2,
	NParams: 1,
	Source:  "__kernel hash_build_pk_i32(k, t, base) { insert(t, k[i], base+i); }",
	Fn: func(ctx *Ctx, args []vec.Vector, params []int64) error {
		keys := args[0].I32()
		t, slots, err := tableOf(args[1])
		if err != nil {
			return err
		}
		base := params[0]
		var full atomic.Bool
		parallelRange(ctx, len(keys), 1, func(s, e int) {
			for i := s; i < e; i++ {
				row := base + int64(i)
				if !insert(t, slots, int64(keys[i]), func(p int) {
					atomic.StoreInt64(&t[p], row)
				}) {
					full.Store(true)
					return
				}
			}
		})
		if full.Load() {
			return errTableFull
		}
		return nil
	},
	Cost: func(m CostModel, args []vec.Vector, _ []int64) vclock.Duration {
		return buildCost(m, int64(args[0].Len()), int64(args[1].Len()/2), 0)
	},
})

// HashBuildSetI32 populates a key set (payload 1), the build side of a
// semi-join such as the EXISTS subquery of TPC-H Q4. Args: keys(I32),
// table(I64).
var HashBuildSetI32 = register(&Kernel{
	Name:   "hash_build_set_i32",
	NArgs:  2,
	Source: "__kernel hash_build_set_i32(k, t) { insert(t, k[i], 1); }",
	Fn: func(ctx *Ctx, args []vec.Vector, _ []int64) error {
		keys := args[0].I32()
		t, slots, err := tableOf(args[1])
		if err != nil {
			return err
		}
		var full atomic.Bool
		parallelRange(ctx, len(keys), 1, func(s, e int) {
			for i := s; i < e; i++ {
				if !insert(t, slots, int64(keys[i]), func(p int) {
					atomic.StoreInt64(&t[p], 1)
				}) {
					full.Store(true)
					return
				}
			}
		})
		if full.Load() {
			return errTableFull
		}
		return nil
	},
	Cost: func(m CostModel, args []vec.Vector, _ []int64) vclock.Duration {
		return buildCost(m, int64(args[0].Len()), int64(args[1].Len()/2), 0)
	},
})

// HashProbeI32 probes the table with a key column and emits join pairs:
// outLeft gets the global probe-side position, outRight the matched build
// payload (the JOINLEFT/JOINRIGHT outputs of Table I). Pair order is
// unspecified, as with competing GPU threads. The pair count goes to
// outCount[0]. Args: keys(I32), table(I64), outLeft(I32), outRight(I64),
// outCount(I64 len 1); params: base.
var HashProbeI32 = register(&Kernel{
	Name:    "hash_probe_i32",
	NArgs:   5,
	NParams: 1,
	Source:  "__kernel hash_probe_i32(k, t, l, r, c, base) { /* probe + atomic append */ }",
	Fn: func(ctx *Ctx, args []vec.Vector, params []int64) error {
		keys := args[0].I32()
		t, slots, err := tableOf(args[1])
		if err != nil {
			return err
		}
		outLeft, outRight, outCount := args[2].I32(), args[3].I64(), args[4].I64()
		if len(outCount) != 1 {
			return fmt.Errorf("%w: hash_probe count buffer must have 1 element", ErrBadArgs)
		}
		if len(outLeft) != len(outRight) {
			return fmt.Errorf("%w: hash_probe output pair lengths differ", ErrBadArgs)
		}
		base := params[0]
		var cursor int64
		var overflow atomic.Bool
		parallelRange(ctx, len(keys), 1, func(s, e int) {
			for i := s; i < e; i++ {
				p := lookup(t, slots, int64(keys[i]))
				if p < 0 {
					continue
				}
				at := atomic.AddInt64(&cursor, 1) - 1
				if at >= int64(len(outLeft)) {
					overflow.Store(true)
					return
				}
				outLeft[at] = int32(base + int64(i))
				outRight[at] = atomic.LoadInt64(&t[p])
			}
		})
		if overflow.Load() {
			return fmt.Errorf("%w: hash_probe output holds %d pairs, overflowed", ErrBadArgs, len(outLeft))
		}
		outCount[0] = cursor
		return nil
	},
	Cost: probeCost,
})

// HashProbeExistsI32 probes the table and marks matching probe rows in a
// bitmap, the semi-join form used by EXISTS subqueries. Args: keys(I32),
// table(I64), out(Bits).
var HashProbeExistsI32 = register(&Kernel{
	Name:   "hash_probe_exists_i32",
	NArgs:  3,
	Source: "__kernel hash_probe_exists_i32(k, t, bm) { bm.bit[i] = contains(t, k[i]); }",
	Fn: func(ctx *Ctx, args []vec.Vector, _ []int64) error {
		keys := args[0].I32()
		t, slots, err := tableOf(args[1])
		if err != nil {
			return err
		}
		out := args[2]
		if out.Type() != vec.Bits || out.Len() != len(keys) {
			return fmt.Errorf("%w: hash_probe_exists output %s for %d keys", ErrBadArgs, out, len(keys))
		}
		words := out.Words()
		parallelRange(ctx, len(keys), 64, func(s, e int) {
			for w := s / 64; w*64 < e; w++ {
				var bits uint64
				limit := (w + 1) * 64
				if limit > e {
					limit = e
				}
				for i := w * 64; i < limit; i++ {
					if lookup(t, slots, int64(keys[i])) >= 0 {
						bits |= 1 << uint(i%64)
					}
				}
				words[w] = bits
			}
		})
		return nil
	},
	Cost: probeCost,
})

func probeCost(m CostModel, args []vec.Vector, _ []int64) vclock.Duration {
	n := int64(args[0].Len())
	slots := int64(args[1].Len() / 2)
	// One random table access per probe; larger tables thrash caches, so
	// the same size scaling as builds applies, without the atomic path.
	contention := 1.0
	if slots > 1<<12 {
		contention += m.SDK.BuildScalePenalty * 0.8 * math.Log2(float64(slots)/float64(int64(1)<<12))
	}
	pen := m.SDK.ProbePenalty
	if pen <= 0 {
		pen = 1
	}
	return vclock.Duration(float64(m.SDK.Random(m.Spec, 16*n)) * contention * pen)
}

// HashAggI32I64 performs group-by aggregation of an int64 value column by
// an int32 key column into a shared table (the HASH_AGG primitive, a
// pipeline breaker). Accumulates across chunks. Args: keys(I32),
// values(I64), table(I64); params: op, groupsHint (used only by the cost
// model; pass 0 when unknown).
var HashAggI32I64 = register(&Kernel{
	Name:    "hash_agg_i32_i64",
	NArgs:   3,
	NParams: 2,
	Source:  "__kernel hash_agg_i32_i64(k, v, t, op) { slot = insert(t, k[i]); atomicAgg(t, slot, v[i]); }",
	Fn: func(ctx *Ctx, args []vec.Vector, params []int64) error {
		keys, values := args[0].I32(), args[1].I64()
		if err := sameLen(len(keys), len(values)); err != nil {
			return err
		}
		t, slots, err := tableOf(args[2])
		if err != nil {
			return err
		}
		op := AggOp(params[0])
		var full atomic.Bool
		parallelRange(ctx, len(keys), 1, func(s, e int) {
			for i := s; i < e; i++ {
				v := values[i]
				if !insert(t, slots, int64(keys[i]), func(p int) {
					atomicAgg(t, p, op, v)
				}) {
					full.Store(true)
					return
				}
			}
		})
		if full.Load() {
			return errTableFull
		}
		return nil
	},
	Cost: hashAggCost,
})

// HashAggCountI32 counts rows per int32 key into a shared table. Args:
// keys(I32), table(I64); params: groupsHint.
var HashAggCountI32 = register(&Kernel{
	Name:    "hash_agg_count_i32",
	NArgs:   2,
	NParams: 1,
	Source:  "__kernel hash_agg_count_i32(k, t) { slot = insert(t, k[i]); atomicAdd(t, slot, 1); }",
	Fn: func(ctx *Ctx, args []vec.Vector, _ []int64) error {
		keys := args[0].I32()
		t, slots, err := tableOf(args[1])
		if err != nil {
			return err
		}
		var full atomic.Bool
		parallelRange(ctx, len(keys), 1, func(s, e int) {
			for i := s; i < e; i++ {
				if !insert(t, slots, int64(keys[i]), func(p int) {
					atomic.AddInt64(&t[p], 1)
				}) {
					full.Store(true)
					return
				}
			}
		})
		if full.Load() {
			return errTableFull
		}
		return nil
	},
	Cost: func(m CostModel, args []vec.Vector, params []int64) vclock.Duration {
		return hashAggCost(m, args, params[:0])
	},
})

// atomicAgg folds v into the payload cell with the correct atomic for op.
// Min/max require payload cells initialized to the aggregate identity
// (HashTableInit's payloadInit parameter).
func atomicAgg(t []int64, p int, op AggOp, v int64) {
	switch op {
	case AggSum:
		atomic.AddInt64(&t[p], v)
	case AggCount:
		atomic.AddInt64(&t[p], 1)
	case AggMin:
		for {
			cur := atomic.LoadInt64(&t[p])
			if v >= cur {
				return
			}
			if atomic.CompareAndSwapInt64(&t[p], cur, v) {
				return
			}
		}
	case AggMax:
		for {
			cur := atomic.LoadInt64(&t[p])
			if v <= cur {
				return
			}
			if atomic.CompareAndSwapInt64(&t[p], cur, v) {
				return
			}
		}
	}
}

func hashAggCost(m CostModel, args []vec.Vector, params []int64) vclock.Duration {
	n := int64(args[0].Len())
	groups := int64(0)
	if len(params) >= 2 {
		groups = params[1]
	}
	// All SIMT threads funnel through one memory controller; static
	// scheduling (OpenCL) degrades sharply as groups spread across more
	// cache lines, CUDA much less (Figure 9(c)).
	contention := 1.0
	if groups > 1 {
		contention += m.SDK.GroupScalePenalty * math.Log2(float64(groups))
	}
	return m.SDK.Atomic(m.Spec, n, contention) + m.SDK.Stream(m.Spec, args[0].Bytes()+args[1].Bytes())
}

// HashExtract compacts the non-empty slots of a table into dense key and
// payload columns sorted by key, with the group count in outCount[0]. The
// key ordering makes extraction deterministic and aligns the outputs of
// multiple aggregation tables built over the same key column. Args:
// table(I64), outKeys(I64), outVals(I64), outCount(I64 len 1).
var HashExtract = register(&Kernel{
	Name:   "hash_extract",
	NArgs:  4,
	Source: "__kernel hash_extract(t, k, v, c) { /* compaction + key sort */ }",
	Fn: func(ctx *Ctx, args []vec.Vector, _ []int64) error {
		t, slots, err := tableOf(args[0])
		if err != nil {
			return err
		}
		outKeys, outVals, outCount := args[1].I64(), args[2].I64(), args[3].I64()
		if len(outCount) != 1 {
			return fmt.Errorf("%w: hash_extract count buffer must have 1 element", ErrBadArgs)
		}
		if len(outKeys) != len(outVals) {
			return fmt.Errorf("%w: hash_extract output lengths differ", ErrBadArgs)
		}
		at := 0
		for s := 0; s < slots; s++ {
			if t[2*s] == hashEmpty {
				continue
			}
			if at >= len(outKeys) {
				return fmt.Errorf("%w: hash_extract output holds %d groups, overflowed", ErrBadArgs, len(outKeys))
			}
			outKeys[at] = t[2*s]
			outVals[at] = t[2*s+1]
			at++
		}
		sortPairs(outKeys[:at], outVals[:at])
		outCount[0] = int64(at)
		return nil
	},
	Cost: func(m CostModel, args []vec.Vector, _ []int64) vclock.Duration {
		return m.SDK.Stream(m.Spec, 2*args[0].Bytes())
	},
})

// sortPairs sorts parallel key/value slices by key ascending.
func sortPairs(keys, vals []int64) {
	sort.Sort(&pairSorter{keys: keys, vals: vals})
}

type pairSorter struct {
	keys, vals []int64
}

func (p *pairSorter) Len() int           { return len(p.keys) }
func (p *pairSorter) Less(i, j int) bool { return p.keys[i] < p.keys[j] }
func (p *pairSorter) Swap(i, j int) {
	p.keys[i], p.keys[j] = p.keys[j], p.keys[i]
	p.vals[i], p.vals[j] = p.vals[j], p.vals[i]
}
