package kernels

import (
	"testing"
	"testing/quick"

	"github.com/adamant-db/adamant/internal/vec"
)

func TestMapKernels(t *testing.T) {
	a := vec.FromInt32([]int32{1, -2, 3, 1 << 30})
	b := vec.FromInt32([]int32{10, 20, -30, 4})

	out := vec.New(vec.Int64, 4)
	launch(t, "map_mul_i32_i64", []vec.Vector{a, b, out})
	for i, want := range []int64{10, -40, -90, int64(1<<30) * 4} {
		if out.I64()[i] != want {
			t.Errorf("mul[%d] = %d, want %d", i, out.I64()[i], want)
		}
	}

	launch(t, "map_mul_complement_i32_i64", []vec.Vector{a, b, out}, 100)
	for i := range a.I32() {
		want := int64(a.I32()[i]) * (100 - int64(b.I32()[i]))
		if out.I64()[i] != want {
			t.Errorf("mulcomp[%d] = %d, want %d", i, out.I64()[i], want)
		}
	}

	launch(t, "map_cast_i32_i64", []vec.Vector{a, out})
	if out.I64()[3] != 1<<30 {
		t.Errorf("cast[3] = %d", out.I64()[3])
	}

	x := vec.FromInt64([]int64{1, 2, 3, 4})
	y := vec.FromInt64([]int64{10, 10, 10, 10})
	launch(t, "map_add_i64", []vec.Vector{x, y, out})
	if out.I64()[2] != 13 {
		t.Errorf("add[2] = %d", out.I64()[2])
	}
	launch(t, "map_mul_i64", []vec.Vector{x, y, out})
	if out.I64()[3] != 40 {
		t.Errorf("mul64[3] = %d", out.I64()[3])
	}
	launch(t, "map_scale_i64", []vec.Vector{x, out}, 7)
	if out.I64()[1] != 14 {
		t.Errorf("scale[1] = %d", out.I64()[1])
	}
}

func TestMapLengthMismatch(t *testing.T) {
	k := mustLookup(t, "map_mul_i32_i64")
	err := k.Fn(testCtx, []vec.Vector{vec.New(vec.Int32, 3), vec.New(vec.Int32, 4), vec.New(vec.Int64, 3)}, nil)
	if err == nil {
		t.Error("expected length mismatch error")
	}
}

func TestFillI64(t *testing.T) {
	out := vec.New(vec.Int64, 100)
	launch(t, "fill_i64", []vec.Vector{out}, -7)
	for _, v := range out.I64() {
		if v != -7 {
			t.Fatal("fill missed an element")
		}
	}
}

func TestCmpOpMatches(t *testing.T) {
	cases := []struct {
		op        CmpOp
		v, lo, hi int64
		want      bool
	}{
		{CmpLt, 4, 5, 0, true}, {CmpLt, 5, 5, 0, false},
		{CmpLe, 5, 5, 0, true}, {CmpLe, 6, 5, 0, false},
		{CmpGt, 6, 5, 0, true}, {CmpGt, 5, 5, 0, false},
		{CmpGe, 5, 5, 0, true}, {CmpGe, 4, 5, 0, false},
		{CmpEq, 5, 5, 0, true}, {CmpEq, 4, 5, 0, false},
		{CmpNe, 4, 5, 0, true}, {CmpNe, 5, 5, 0, false},
		{CmpBetween, 5, 5, 7, true}, {CmpBetween, 7, 5, 7, true},
		{CmpBetween, 8, 5, 7, false}, {CmpBetween, 4, 5, 7, false},
		{CmpOp(99), 1, 1, 1, false},
	}
	for _, c := range cases {
		if got := c.op.Matches(c.v, c.lo, c.hi); got != c.want {
			t.Errorf("%v.Matches(%d,%d,%d) = %v", c.op, c.v, c.lo, c.hi, got)
		}
	}
}

// Property: filter_bitmap agrees with a naive evaluation for random data
// and all operators.
func TestFilterBitmapProperty(t *testing.T) {
	f := func(data []int32, opRaw uint8, lo, hi int32) bool {
		op := CmpOp(int64(opRaw) % 7)
		in := vec.FromInt32(data)
		out := vec.New(vec.Bits, len(data))
		k := mustLookup(t, "filter_bitmap_i32")
		if err := k.Fn(testCtx, []vec.Vector{in, out}, []int64{int64(op), int64(lo), int64(hi)}); err != nil {
			return false
		}
		for i, v := range data {
			if out.Bit(i) != op.Matches(int64(v), int64(lo), int64(hi)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: filter_pos returns exactly the ordered matching positions.
func TestFilterPosProperty(t *testing.T) {
	f := func(data []int32, lo int32) bool {
		in := vec.FromInt32(data)
		pos := vec.New(vec.Int32, len(data))
		count := vec.New(vec.Int64, 1)
		k := mustLookup(t, "filter_pos_i32")
		if err := k.Fn(testCtx, []vec.Vector{in, pos, count}, []int64{int64(CmpLt), int64(lo), 0}); err != nil {
			return false
		}
		var want []int32
		for i, v := range data {
			if v < lo {
				want = append(want, int32(i))
			}
		}
		if count.I64()[0] != int64(len(want)) {
			return false
		}
		for i, w := range want {
			if pos.I32()[i] != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFilterPosOverflow(t *testing.T) {
	in := vec.FromInt32([]int32{1, 2, 3})
	pos := vec.New(vec.Int32, 1) // too small for 3 matches
	count := vec.New(vec.Int64, 1)
	k := mustLookup(t, "filter_pos_i32")
	if err := k.Fn(testCtx, []vec.Vector{in, pos, count}, []int64{int64(CmpLt), 10, 0}); err == nil {
		t.Error("expected overflow error")
	}
}

func TestBitmapCombines(t *testing.T) {
	n := 130
	a := vec.New(vec.Bits, n)
	b := vec.New(vec.Bits, n)
	for i := 0; i < n; i++ {
		a.SetBit(i, i%2 == 0)
		b.SetBit(i, i%3 == 0)
	}
	out := vec.New(vec.Bits, n)

	launch(t, "bitmap_and", []vec.Vector{a, b, out})
	for i := 0; i < n; i++ {
		if out.Bit(i) != (i%2 == 0 && i%3 == 0) {
			t.Fatalf("and bit %d wrong", i)
		}
	}
	launch(t, "bitmap_or", []vec.Vector{a, b, out})
	for i := 0; i < n; i++ {
		if out.Bit(i) != (i%2 == 0 || i%3 == 0) {
			t.Fatalf("or bit %d wrong", i)
		}
	}
	launch(t, "bitmap_andnot", []vec.Vector{a, b, out})
	for i := 0; i < n; i++ {
		if out.Bit(i) != (i%2 == 0 && i%3 != 0) {
			t.Fatalf("andnot bit %d wrong", i)
		}
	}
}

func TestFilterColCmp(t *testing.T) {
	a := vec.FromInt32([]int32{1, 5, 3, 7})
	b := vec.FromInt32([]int32{2, 4, 3, 9})
	out := vec.New(vec.Bits, 4)
	launch(t, "filter_bitmap_colcmp_i32", []vec.Vector{a, b, out}, int64(CmpLt))
	want := []bool{true, false, false, true}
	for i, w := range want {
		if out.Bit(i) != w {
			t.Errorf("bit %d = %v, want %v", i, out.Bit(i), w)
		}
	}
}

// Property: workers=1 and workers=16 produce identical filter results.
func TestFilterDeterministicAcrossWorkers(t *testing.T) {
	f := func(data []int32, lo int32) bool {
		in := vec.FromInt32(data)
		out1 := vec.New(vec.Bits, len(data))
		out16 := vec.New(vec.Bits, len(data))
		k := mustLookup(t, "filter_bitmap_i32")
		params := []int64{int64(CmpGe), int64(lo), 0}
		if err := k.Fn(&Ctx{Workers: 1}, []vec.Vector{in, out1}, params); err != nil {
			return false
		}
		if err := k.Fn(&Ctx{Workers: 16}, []vec.Vector{in, out16}, params); err != nil {
			return false
		}
		return vec.Equal(out1, out16)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
