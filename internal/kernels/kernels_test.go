package kernels

import (
	"errors"
	"testing"

	"github.com/adamant-db/adamant/internal/simhw"
	"github.com/adamant-db/adamant/internal/vec"
)

// testCtx runs kernels with a few workers so parallel paths execute.
var testCtx = &Ctx{Workers: 4}

// costModel is a fixed device/SDK pair for cost checks.
var costModel = CostModel{Spec: &simhw.RTX2080Ti, SDK: &simhw.CUDAProfile}

func mustLookup(t *testing.T, name string) *Kernel {
	t.Helper()
	k, err := NewRegistry().Lookup(name)
	if err != nil {
		t.Fatalf("lookup %s: %v", name, err)
	}
	return k
}

// launch validates and runs a kernel the way a device would.
func launch(t *testing.T, name string, args []vec.Vector, params ...int64) {
	t.Helper()
	k := mustLookup(t, name)
	if err := k.Validate(args, params); err != nil {
		t.Fatalf("%s: validate: %v", name, err)
	}
	if err := k.Fn(testCtx, args, params); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	// Kernel body costs may round to zero for tiny inputs (the device adds
	// launch overhead separately) but must never be negative.
	if cost := k.Cost(costModel, args, params); cost < 0 {
		t.Fatalf("%s: negative cost %v", name, cost)
	}
}

func TestRegistryBuiltins(t *testing.T) {
	r := NewRegistry()
	names := r.Names()
	want := []string{
		"agg_block_i32", "agg_block_i64", "agg_count_bits", "bitmap_and",
		"bitmap_andnot", "bitmap_not", "bitmap_or", "fill_i64", "filter_bitmap_colcmp_i32",
		"filter_bitmap_i32", "filter_bitmap_i64", "filter_pos_i32",
		"fused_filter_agg", "fused_filter_mat", "hash_agg_count_i32",
		"hash_agg_i32_i64", "hash_build_pk_i32", "hash_build_set_i32",
		"hash_extract", "hash_probe_exists_i32", "hash_probe_i32",
		"hash_table_init", "map_add_i64", "map_boundary_i32", "map_cast_i32_i64", "map_mul_complement_i32_i64",
		"map_mul_i32_i64", "map_mul_i64", "map_scale_i64",
		"materialize_bitmap_i32", "materialize_bitmap_i64",
		"materialize_pos_i32", "materialize_pos_i64", "prefix_sum_bits",
		"prefix_sum_i32", "prefix_sum_inclusive_i32", "sort_agg_i32_i64",
	}
	if len(names) != len(want) {
		t.Fatalf("registry has %d kernels, want %d: %v", len(names), len(want), names)
	}
	for i, n := range want {
		if names[i] != n {
			t.Errorf("kernel %d = %s, want %s", i, names[i], n)
		}
	}
}

func TestRegistryUnknown(t *testing.T) {
	if _, err := NewRegistry().Lookup("nope"); !errors.Is(err, ErrUnknownKernel) {
		t.Errorf("unknown kernel: %v", err)
	}
}

func TestRegistryCustom(t *testing.T) {
	r := NewRegistry()
	r.Register(&Kernel{Name: "custom", NArgs: 0})
	if _, err := r.Lookup("custom"); err != nil {
		t.Errorf("custom kernel not found: %v", err)
	}
	var zero Registry
	zero.Register(&Kernel{Name: "x"})
	if _, err := zero.Lookup("x"); err != nil {
		t.Errorf("zero registry register: %v", err)
	}
}

func TestValidateShapes(t *testing.T) {
	k := mustLookup(t, "map_mul_i32_i64")
	if err := k.Validate(make([]vec.Vector, 2), nil); !errors.Is(err, ErrBadArgs) {
		t.Errorf("wrong arg count: %v", err)
	}
	k = mustLookup(t, "filter_bitmap_i32")
	if err := k.Validate(make([]vec.Vector, 2), []int64{1}); !errors.Is(err, ErrBadArgs) {
		t.Errorf("missing params: %v", err)
	}
}

func TestParallelRangeCoversAll(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 1000} {
		hits := make([]int32, n)
		parallelRange(&Ctx{Workers: 7}, n, 64, func(s, e int) {
			for i := s; i < e; i++ {
				hits[i]++
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: element %d visited %d times", n, i, h)
			}
		}
	}
}

func TestCtxWorkerDefaults(t *testing.T) {
	var nilCtx *Ctx
	if nilCtx.workers() < 1 {
		t.Error("nil ctx workers")
	}
	if (&Ctx{}).workers() < 1 {
		t.Error("zero ctx workers")
	}
	if (&Ctx{Workers: 3}).workers() != 3 {
		t.Error("explicit workers ignored")
	}
}
