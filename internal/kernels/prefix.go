package kernels

import (
	"fmt"
	"math/bits"
	"sync"

	"github.com/adamant-db/adamant/internal/vclock"
	"github.com/adamant-db/adamant/internal/vec"
)

// PrefixSumI32 computes the exclusive prefix sum of an int32 column (the
// PREFIX_SUM primitive for 0/1 sequences or sorted run lengths). Args:
// in(I32), out(I32).
var PrefixSumI32 = register(&Kernel{
	Name:   "prefix_sum_i32",
	NArgs:  2,
	Source: "__kernel prefix_sum_i32(in, out) { /* blockwise scan + fixup */ }",
	Fn: func(ctx *Ctx, args []vec.Vector, _ []int64) error {
		in, out := args[0].I32(), args[1].I32()
		if err := sameLen(len(in), len(out)); err != nil {
			return err
		}
		scanExclusiveI32(ctx, in, out)
		return nil
	},
	Cost: prefixCost,
})

// PrefixSumBits computes, for every input row, the number of set bits
// strictly before it in a bitmap. The result is the scatter offset table the
// SORT_AGG and MATERIALIZE primitives consume. Args: in(Bits), out(I32).
var PrefixSumBits = register(&Kernel{
	Name:   "prefix_sum_bits",
	NArgs:  2,
	Source: "__kernel prefix_sum_bits(bm, out) { /* popcount scan */ }",
	Fn: func(ctx *Ctx, args []vec.Vector, _ []int64) error {
		bm := args[0]
		out := args[1].I32()
		if bm.Type() != vec.Bits {
			return fmt.Errorf("%w: prefix_sum_bits input must be Bits", ErrBadArgs)
		}
		if bm.Len() != len(out) {
			return fmt.Errorf("%w: prefix_sum_bits length mismatch %d vs %d", ErrBadArgs, bm.Len(), len(out))
		}
		words := bm.Words()
		n := bm.Len()

		// Phase 1: popcount per word (sequentially cheap), then exclusive
		// scan over word counts.
		nw := (n + 63) / 64
		wordBase := make([]int32, nw+1)
		for w := 0; w < nw; w++ {
			wordBase[w+1] = wordBase[w] + int32(bits.OnesCount64(words[w]))
		}

		// Phase 2: expand within words in parallel.
		parallelRange(ctx, n, 64, func(s, e int) {
			for i := s; i < e; i++ {
				w := i / 64
				mask := uint64(1)<<uint(i%64) - 1
				out[i] = wordBase[w] + int32(bits.OnesCount64(words[w]&mask))
			}
		})
		return nil
	},
	Cost: prefixCost,
})

func prefixCost(m CostModel, args []vec.Vector, _ []int64) vclock.Duration {
	// Scans read the input twice (block scan + fixup) and write once.
	var bytes int64
	for _, a := range args {
		bytes += a.Bytes()
	}
	return m.SDK.Stream(m.Spec, 2*bytes)
}

// scanExclusiveI32 computes an exclusive prefix sum with a blockwise
// parallel scan: per-span sums first, then a span-base fixup pass.
func scanExclusiveI32(ctx *Ctx, in, out []int32) {
	n := len(in)
	if n == 0 {
		return
	}
	w := ctx.workers()
	span := (n + w - 1) / w
	if span == 0 {
		span = 1
	}
	nSpans := (n + span - 1) / span
	sums := make([]int32, nSpans+1)
	var wg sync.WaitGroup
	for si := 0; si < nSpans; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			s, e := si*span, (si+1)*span
			if e > n {
				e = n
			}
			var acc int32
			for i := s; i < e; i++ {
				out[i] = acc
				acc += in[i]
			}
			sums[si+1] = acc
		}(si)
	}
	wg.Wait()
	for i := 1; i <= nSpans; i++ {
		sums[i] += sums[i-1]
	}
	for si := 1; si < nSpans; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			s, e := si*span, (si+1)*span
			if e > n {
				e = n
			}
			base := sums[si]
			for i := s; i < e; i++ {
				out[i] += base
			}
		}(si)
	}
	wg.Wait()
}
