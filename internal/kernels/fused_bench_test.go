package kernels

import (
	"testing"
	"time"

	"github.com/adamant-db/adamant/internal/vec"
)

// timeIt measures one invocation in nanoseconds.
func timeIt(run func()) int64 {
	start := time.Now()
	run()
	return time.Since(start).Nanoseconds()
}

// Host-kernel benchmark of the fused single-pass Q6 chain against the
// unfused primitive sequence it replaces. Both paths run the same Q6-shaped
// predicate set (shipdate window ∧ discount band ∧ quantity cap) and the
// revenue map over identically distributed columns, on the same Ctx, so
// the difference is exactly what fusion buys on the host: one streaming
// read of the base columns instead of three filter passes, two bitmap
// combines, two gathers, a map and a reduction bounced through
// intermediate buffers.

const benchQ6Rows = 1 << 20

// Q6-shaped predicate constants over the synthetic columns below. Combined
// selectivity ~2%, like TPC-H Q6.
const (
	benchShipLo = 1000
	benchShipHi = 1364 // inclusive, ~1 year of a ~7-year span
	benchDiscLo = 5
	benchDiscHi = 7
	benchQtyCut = 24
)

// benchQ6Columns fills the four base columns with a deterministic LCG,
// matching the TPC-H Q6 domains: a multi-year shipdate span, discounts
// 0..10, quantities 1..50, prices in the thousands.
func benchQ6Columns() (ship, disc, qty, price vec.Vector) {
	s := make([]int32, benchQ6Rows)
	d := make([]int32, benchQ6Rows)
	q := make([]int32, benchQ6Rows)
	p := make([]int32, benchQ6Rows)
	x := uint64(42)
	next := func() uint64 {
		x = x*6364136223846793005 + 1442695040888963407
		return x >> 33
	}
	for i := range s {
		s[i] = int32(next() % 2557) // ~7 years of days
		d[i] = int32(next() % 11)
		q[i] = int32(1 + next()%50)
		p[i] = int32(1000 + next()%99000)
	}
	return vec.FromInt32(s), vec.FromInt32(d), vec.FromInt32(q), vec.FromInt32(p)
}

// benchQ6Scratch holds the intermediate buffers of the unfused path,
// allocated once so the benchmark times kernel work, not make().
type benchQ6Scratch struct {
	bmShip, bmDisc, bmQty, bmA, bmB vec.Vector
	matPrice, matDisc               []int32
	revenue                         []int64
	count                           vec.Vector
}

func newBenchQ6Scratch() *benchQ6Scratch {
	return &benchQ6Scratch{
		bmShip:   vec.New(vec.Bits, benchQ6Rows),
		bmDisc:   vec.New(vec.Bits, benchQ6Rows),
		bmQty:    vec.New(vec.Bits, benchQ6Rows),
		bmA:      vec.New(vec.Bits, benchQ6Rows),
		bmB:      vec.New(vec.Bits, benchQ6Rows),
		matPrice: make([]int32, benchQ6Rows),
		matDisc:  make([]int32, benchQ6Rows),
		revenue:  make([]int64, benchQ6Rows),
		count:    vec.New(vec.Int64, 1),
	}
}

func benchLookup(tb testing.TB, name string) *Kernel {
	tb.Helper()
	k, err := NewRegistry().Lookup(name)
	if err != nil {
		tb.Fatalf("lookup %s: %v", name, err)
	}
	return k
}

// runUnfusedQ6 executes the nine-launch unfused primitive sequence and
// returns sum(price*discount) over the survivors.
func runUnfusedQ6(tb testing.TB, ctx *Ctx, ship, disc, qty, price vec.Vector, sc *benchQ6Scratch) int64 {
	tb.Helper()
	filter := benchLookup(tb, "filter_bitmap_i32")
	and := benchLookup(tb, "bitmap_and")
	mat := benchLookup(tb, "materialize_bitmap_i32")
	mul := benchLookup(tb, "map_mul_i32_i64")
	agg := benchLookup(tb, "agg_block_i64")

	step := func(err error) {
		if err != nil {
			tb.Fatal(err)
		}
	}
	step(filter.Fn(ctx, []vec.Vector{ship, sc.bmShip}, []int64{int64(CmpBetween), benchShipLo, benchShipHi}))
	step(filter.Fn(ctx, []vec.Vector{disc, sc.bmDisc}, []int64{int64(CmpBetween), benchDiscLo, benchDiscHi}))
	step(filter.Fn(ctx, []vec.Vector{qty, sc.bmQty}, []int64{int64(CmpLt), benchQtyCut, 0}))
	step(and.Fn(ctx, []vec.Vector{sc.bmShip, sc.bmDisc, sc.bmA}, nil))
	step(and.Fn(ctx, []vec.Vector{sc.bmA, sc.bmQty, sc.bmB}, nil))
	step(mat.Fn(ctx, []vec.Vector{price, sc.bmB, vec.FromInt32(sc.matPrice), sc.count}, nil))
	n := int(sc.count.I64()[0])
	step(mat.Fn(ctx, []vec.Vector{disc, sc.bmB, vec.FromInt32(sc.matDisc), sc.count}, nil))
	rev := vec.FromInt64(sc.revenue[:n])
	step(mul.Fn(ctx, []vec.Vector{vec.FromInt32(sc.matPrice[:n]), vec.FromInt32(sc.matDisc[:n]), rev}, nil))
	acc := vec.New(vec.Int64, 1)
	step(agg.Fn(ctx, []vec.Vector{rev, acc}, []int64{int64(AggSum)}))
	return acc.I64()[0]
}

// benchFusedQ6Params encodes the same chain as a fused micro-program over
// columns [ship, disc, qty, price]: three AND-combined predicates, the
// price*discount map, a SUM reduction.
func benchFusedQ6Params() []int64 {
	return []int64{
		3,
		0, int64(CmpBetween), benchShipLo, benchShipHi,
		1, int64(CmpBetween), benchDiscLo, benchDiscHi,
		2, int64(CmpLt), benchQtyCut, 0,
		FusedMapMul, 3, 1, 0,
		int64(AggSum),
	}
}

func runFusedQ6(tb testing.TB, ctx *Ctx, ship, disc, qty, price vec.Vector) int64 {
	tb.Helper()
	fused := benchLookup(tb, "fused_filter_agg")
	acc := vec.New(vec.Int64, 1)
	if err := fused.Fn(ctx, []vec.Vector{ship, disc, qty, price, acc}, benchFusedQ6Params()); err != nil {
		tb.Fatal(err)
	}
	return acc.I64()[0]
}

func BenchmarkUnfusedQ6(b *testing.B) {
	ship, disc, qty, price := benchQ6Columns()
	sc := newBenchQ6Scratch()
	ctx := &Ctx{Workers: 4}
	b.SetBytes(4 * 4 * benchQ6Rows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runUnfusedQ6(b, ctx, ship, disc, qty, price, sc)
	}
}

func BenchmarkFusedQ6(b *testing.B) {
	ship, disc, qty, price := benchQ6Columns()
	ctx := &Ctx{Workers: 4}
	b.SetBytes(4 * 4 * benchQ6Rows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runFusedQ6(b, ctx, ship, disc, qty, price)
	}
}

// TestFusedQ6HostSpeedup asserts the fused kernel answers identically to
// the unfused sequence and beats it by the 1.5x the single-pass rewrite is
// sold on. Timing uses the best of several alternated rounds so a noisy
// scheduler cannot fail a genuinely faster kernel.
func TestFusedQ6HostSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive; skipped under -short")
	}
	ship, disc, qty, price := benchQ6Columns()
	sc := newBenchQ6Scratch()
	ctx := &Ctx{Workers: 4}

	want := runUnfusedQ6(t, ctx, ship, disc, qty, price, sc)
	if got := runFusedQ6(t, ctx, ship, disc, qty, price); got != want {
		t.Fatalf("fused revenue = %d, unfused = %d", got, want)
	}
	if want == 0 {
		t.Fatal("Q6 predicates selected no rows; benchmark data is degenerate")
	}

	const rounds = 5
	best := func(run func()) (min int64) {
		for r := 0; r < rounds; r++ {
			d := timeIt(run)
			if r == 0 || d < min {
				min = d
			}
		}
		return min
	}
	unfused := best(func() { runUnfusedQ6(t, ctx, ship, disc, qty, price, sc) })
	fused := best(func() { runFusedQ6(t, ctx, ship, disc, qty, price) })
	speedup := float64(unfused) / float64(fused)
	t.Logf("unfused %dns, fused %dns: %.2fx", unfused, fused, speedup)
	if speedup < 1.5 {
		t.Errorf("fused Q6 speedup %.2fx, want >= 1.5x", speedup)
	}
}
