package kernels

import (
	"fmt"
	"math"
	"sync"

	"github.com/adamant-db/adamant/internal/vclock"
	"github.com/adamant-db/adamant/internal/vec"
)

// AggOp selects the aggregate function of AGG_BLOCK / HASH_AGG / SORT_AGG.
type AggOp int64

// Aggregate functions.
const (
	AggSum AggOp = iota
	AggCount
	AggMin
	AggMax
)

// String returns the SQL spelling.
func (op AggOp) String() string {
	switch op {
	case AggSum:
		return "sum"
	case AggCount:
		return "count"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	default:
		return fmt.Sprintf("agg(%d)", int64(op))
	}
}

func (op AggOp) identity() int64 {
	switch op {
	case AggMin:
		return math.MaxInt64
	case AggMax:
		return math.MinInt64
	default:
		return 0
	}
}

func (op AggOp) combine(acc, v int64) int64 {
	switch op {
	case AggSum:
		return acc + v
	case AggCount:
		return acc + 1
	case AggMin:
		if v < acc {
			return v
		}
		return acc
	case AggMax:
		if v > acc {
			return v
		}
		return acc
	default:
		return acc
	}
}

func aggCost(m CostModel, args []vec.Vector, _ []int64) vclock.Duration {
	// Tree reduction: one streaming pass over the input.
	return m.SDK.Stream(m.Spec, args[0].Bytes())
}

// AggBlockI64 reduces an int64 column to a scalar (the AGG_BLOCK primitive,
// a pipeline breaker). The result accumulates into out[0], so chunked
// execution can fold partial aggregates of successive chunks into the same
// output buffer. Args: in(I64), out(I64 len 1); params: op.
var AggBlockI64 = register(&Kernel{
	Name:    "agg_block_i64",
	NArgs:   2,
	NParams: 1,
	Source:  "__kernel agg_block_i64(in, out, op) { /* tree reduction */ }",
	Fn: func(ctx *Ctx, args []vec.Vector, params []int64) error {
		in, out := args[0].I64(), args[1].I64()
		if len(out) != 1 {
			return fmt.Errorf("%w: agg_block output must have 1 element", ErrBadArgs)
		}
		op := AggOp(params[0])
		out[0] = op.combine2(out[0], reduceI64(ctx, in, op))
		return nil
	},
	Cost: aggCost,
})

// AggBlockI32 reduces an int32 column into an int64 scalar, accumulating
// into out[0]. Args: in(I32), out(I64 len 1); params: op.
var AggBlockI32 = register(&Kernel{
	Name:    "agg_block_i32",
	NArgs:   2,
	NParams: 1,
	Source:  "__kernel agg_block_i32(in, out, op) { /* tree reduction */ }",
	Fn: func(ctx *Ctx, args []vec.Vector, params []int64) error {
		in, out := args[0].I32(), args[1].I64()
		if len(out) != 1 {
			return fmt.Errorf("%w: agg_block output must have 1 element", ErrBadArgs)
		}
		op := AggOp(params[0])
		w := ctx.workers()
		span := (len(in) + w - 1) / w
		if span == 0 {
			span = 1
		}
		nSpans := (len(in) + span - 1) / span
		partial := make([]int64, nSpans)
		var wg sync.WaitGroup
		for si := 0; si < nSpans; si++ {
			wg.Add(1)
			go func(si int) {
				defer wg.Done()
				s, e := si*span, (si+1)*span
				if e > len(in) {
					e = len(in)
				}
				acc := op.identity()
				for i := s; i < e; i++ {
					acc = op.combine(acc, int64(in[i]))
				}
				partial[si] = acc
			}(si)
		}
		wg.Wait()
		acc := op.identity()
		for _, p := range partial {
			acc = op.combine2(acc, p)
		}
		out[0] = op.combine2(out[0], acc)
		return nil
	},
	Cost: aggCost,
})

// AggCountBits counts the set bits of a bitmap into out[0] (COUNT over a
// filter result without materialization). Accumulates across chunks. Args:
// in(Bits), out(I64 len 1).
var AggCountBits = register(&Kernel{
	Name:   "agg_count_bits",
	NArgs:  2,
	Source: "__kernel agg_count_bits(bm, out) { atomicAdd(out, popc(bm.word[w])); }",
	Fn: func(ctx *Ctx, args []vec.Vector, _ []int64) error {
		bm := args[0]
		out := args[1].I64()
		if bm.Type() != vec.Bits {
			return fmt.Errorf("%w: agg_count_bits input must be Bits", ErrBadArgs)
		}
		if len(out) != 1 {
			return fmt.Errorf("%w: agg_count_bits output must have 1 element", ErrBadArgs)
		}
		out[0] += int64(bm.Popcount())
		return nil
	},
	Cost: aggCost,
})

// combine2 merges two already-reduced partials; COUNT partials add rather
// than increment.
func (op AggOp) combine2(a, b int64) int64 {
	if op == AggCount {
		return a + b
	}
	return op.combine(a, b)
}

// Merge folds two already-reduced partial aggregates — the coordinator-side
// re-aggregation of sharded scatter/gather execution. It is combine2
// exported: SUM and COUNT partials add, MIN/MAX partials take the extremum,
// so merging per-shard partials is bit-identical to aggregating the
// unsharded input.
func (op AggOp) Merge(a, b int64) int64 { return op.combine2(a, b) }

// MergeIdentity is the fold seed for Merge: 0 for SUM/COUNT, the
// appropriate int64 extremum for MIN/MAX.
func (op AggOp) MergeIdentity() int64 { return op.identity() }

func reduceI64(ctx *Ctx, in []int64, op AggOp) int64 {
	w := ctx.workers()
	span := (len(in) + w - 1) / w
	if span == 0 {
		span = 1
	}
	nSpans := (len(in) + span - 1) / span
	partial := make([]int64, nSpans)
	var wg sync.WaitGroup
	for si := 0; si < nSpans; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			s, e := si*span, (si+1)*span
			if e > len(in) {
				e = len(in)
			}
			acc := op.identity()
			for i := s; i < e; i++ {
				acc = op.combine(acc, in[i])
			}
			partial[si] = acc
		}(si)
	}
	wg.Wait()
	acc := op.identity()
	for _, p := range partial {
		acc = op.combine2(acc, p)
	}
	return acc
}

// SortAggI32I64 aggregates an int64 value column grouped by an int32 key
// column that is already sorted (the SORT_AGG primitive). The caller
// supplies the group-boundary prefix sum produced by PREFIX_SUM over the
// boundary indicator, as Table I specifies: pxsum[i] is the group index of
// row i. Group keys and aggregates are written densely; the group count
// goes to outCount[0]. Args: keys(I32), values(I64), pxsum(I32),
// outKeys(I32), outAggs(I64), outCount(I64 len 1); params: op.
var SortAggI32I64 = register(&Kernel{
	Name:    "sort_agg_i32_i64",
	NArgs:   6,
	NParams: 1,
	Source:  "__kernel sort_agg_i32_i64(k, v, pxsum, gk, ga, count, op) { /* segmented reduce */ }",
	Fn: func(ctx *Ctx, args []vec.Vector, params []int64) error {
		keys, values, pxsum := args[0].I32(), args[1].I64(), args[2].I32()
		outKeys, outAggs, outCount := args[3].I32(), args[4].I64(), args[5].I64()
		if err := sameLen(len(keys), len(values), len(pxsum)); err != nil {
			return err
		}
		if len(outCount) != 1 {
			return fmt.Errorf("%w: sort_agg count buffer must have 1 element", ErrBadArgs)
		}
		op := AggOp(params[0])
		n := len(keys)
		if n == 0 {
			outCount[0] = 0
			return nil
		}
		groups := int(pxsum[n-1]) + 1
		if groups > len(outKeys) || groups > len(outAggs) {
			return fmt.Errorf("%w: sort_agg output holds %d groups, need %d", ErrBadArgs, len(outKeys), groups)
		}
		for g := 0; g < groups; g++ {
			outAggs[g] = op.identity()
		}
		// Segmented reduction; group ranges are contiguous because the
		// input is sorted, so each group is reduced by one pass.
		for i := 0; i < n; i++ {
			g := pxsum[i]
			outKeys[g] = keys[i]
			outAggs[g] = op.combine(outAggs[g], values[i])
		}
		outCount[0] = int64(groups)
		return nil
	},
	Cost: func(m CostModel, args []vec.Vector, _ []int64) vclock.Duration {
		var in int64
		for _, a := range args[:3] {
			in += a.Bytes()
		}
		return m.SDK.Stream(m.Spec, in)
	},
})
