package kernels

import (
	"fmt"
	"sync"

	"github.com/adamant-db/adamant/internal/vclock"
	"github.com/adamant-db/adamant/internal/vec"
)

// CmpOp selects the comparison a filter kernel applies. The operand values
// arrive through the scalar parameters (lo, hi); Between is inclusive on
// both ends.
type CmpOp int64

// Comparison operators.
const (
	CmpLt CmpOp = iota
	CmpLe
	CmpGt
	CmpGe
	CmpEq
	CmpNe
	CmpBetween
)

// String returns the SQL-ish operator spelling.
func (op CmpOp) String() string {
	switch op {
	case CmpLt:
		return "<"
	case CmpLe:
		return "<="
	case CmpGt:
		return ">"
	case CmpGe:
		return ">="
	case CmpEq:
		return "="
	case CmpNe:
		return "<>"
	case CmpBetween:
		return "between"
	default:
		return fmt.Sprintf("cmp(%d)", int64(op))
	}
}

// Matches evaluates the predicate against a single value.
func (op CmpOp) Matches(v, lo, hi int64) bool {
	switch op {
	case CmpLt:
		return v < lo
	case CmpLe:
		return v <= lo
	case CmpGt:
		return v > lo
	case CmpGe:
		return v >= lo
	case CmpEq:
		return v == lo
	case CmpNe:
		return v != lo
	case CmpBetween:
		return v >= lo && v <= hi
	default:
		return false
	}
}

// FilterBitmapI32 evaluates a predicate over an int32 column and writes a
// bit-packed result, the FILTER_BITMAP primitive. Args: in(I32), out(Bits);
// params: op, lo, hi.
var FilterBitmapI32 = register(&Kernel{
	Name:    "filter_bitmap_i32",
	NArgs:   2,
	NParams: 3,
	Source:  "__kernel filter_bitmap_i32(in, out, op, lo, hi) { out.bit[i] = cmp(in[i]); }",
	Fn: func(ctx *Ctx, args []vec.Vector, params []int64) error {
		in := args[0].I32()
		out := args[1]
		if out.Type() != vec.Bits || out.Len() != len(in) {
			return fmt.Errorf("%w: filter_bitmap_i32 output %s for %d inputs", ErrBadArgs, out, len(in))
		}
		op, lo, hi := CmpOp(params[0]), params[1], params[2]
		words := out.Words()
		parallelRange(ctx, len(in), 64, func(s, e int) {
			for w := s / 64; w*64 < e; w++ {
				var bits uint64
				limit := (w + 1) * 64
				if limit > e {
					limit = e
				}
				for i := w * 64; i < limit; i++ {
					if op.Matches(int64(in[i]), lo, hi) {
						bits |= 1 << uint(i%64)
					}
				}
				words[w] = bits
			}
		})
		return nil
	},
	Cost: streamCost,
})

// FilterBitmapI64 is FilterBitmapI32 for int64 columns (derived measures
// filtered after a MAP). Args: in(I64), out(Bits); params: op, lo, hi.
var FilterBitmapI64 = register(&Kernel{
	Name:    "filter_bitmap_i64",
	NArgs:   2,
	NParams: 3,
	Source:  "__kernel filter_bitmap_i64(in, out, op, lo, hi) { out.bit[i] = cmp(in[i]); }",
	Fn: func(ctx *Ctx, args []vec.Vector, params []int64) error {
		in := args[0].I64()
		out := args[1]
		if out.Type() != vec.Bits || out.Len() != len(in) {
			return fmt.Errorf("%w: filter_bitmap_i64 output %s for %d inputs", ErrBadArgs, out, len(in))
		}
		op, lo, hi := CmpOp(params[0]), params[1], params[2]
		words := out.Words()
		parallelRange(ctx, len(in), 64, func(s, e int) {
			for w := s / 64; w*64 < e; w++ {
				var bits uint64
				limit := (w + 1) * 64
				if limit > e {
					limit = e
				}
				for i := w * 64; i < limit; i++ {
					if op.Matches(in[i], lo, hi) {
						bits |= 1 << uint(i%64)
					}
				}
				words[w] = bits
			}
		})
		return nil
	},
	Cost: streamCost,
})

// BitmapAnd intersects two bitmaps, combining conjunctive filter results.
// Args: a(Bits), b(Bits), out(Bits).
var BitmapAnd = register(&Kernel{
	Name:   "bitmap_and",
	NArgs:  3,
	Source: "__kernel bitmap_and(a, b, out) { out.word[w] = a.word[w] & b.word[w]; }",
	Fn:     bitmapCombine(func(x, y uint64) uint64 { return x & y }),
	Cost:   streamCost,
})

// BitmapOr unions two bitmaps. Args: a(Bits), b(Bits), out(Bits).
var BitmapOr = register(&Kernel{
	Name:   "bitmap_or",
	NArgs:  3,
	Source: "__kernel bitmap_or(a, b, out) { out.word[w] = a.word[w] | b.word[w]; }",
	Fn:     bitmapCombine(func(x, y uint64) uint64 { return x | y }),
	Cost:   streamCost,
})

// BitmapNot complements a bitmap (NOT IN anti-joins). Trailing bits beyond
// the logical length stay unspecified, as consumers mask by length. Args:
// in(Bits), out(Bits).
var BitmapNot = register(&Kernel{
	Name:   "bitmap_not",
	NArgs:  2,
	Source: "__kernel bitmap_not(in, out) { out.word[w] = ~in.word[w]; }",
	Fn: func(ctx *Ctx, args []vec.Vector, _ []int64) error {
		in, out := args[0], args[1]
		if in.Type() != vec.Bits || out.Type() != vec.Bits {
			return fmt.Errorf("%w: bitmap_not needs Bits args", ErrBadArgs)
		}
		if err := sameLen(in.Len(), out.Len()); err != nil {
			return err
		}
		iw, ow := in.Words(), out.Words()
		parallelRange(ctx, len(ow), 1, func(s, e int) {
			for w := s; w < e; w++ {
				ow[w] = ^iw[w]
			}
		})
		return nil
	},
	Cost: streamCost,
})

// BitmapAndNot computes a AND NOT b, used for anti-join style filters.
// Args: a(Bits), b(Bits), out(Bits).
var BitmapAndNot = register(&Kernel{
	Name:   "bitmap_andnot",
	NArgs:  3,
	Source: "__kernel bitmap_andnot(a, b, out) { out.word[w] = a.word[w] & ~b.word[w]; }",
	Fn:     bitmapCombine(func(x, y uint64) uint64 { return x &^ y }),
	Cost:   streamCost,
})

func bitmapCombine(f func(x, y uint64) uint64) Func {
	return func(ctx *Ctx, args []vec.Vector, _ []int64) error {
		a, b, out := args[0], args[1], args[2]
		if a.Type() != vec.Bits || b.Type() != vec.Bits || out.Type() != vec.Bits {
			return fmt.Errorf("%w: bitmap combine needs Bits args", ErrBadArgs)
		}
		if err := sameLen(a.Len(), b.Len(), out.Len()); err != nil {
			return err
		}
		aw, bw, ow := a.Words(), b.Words(), out.Words()
		parallelRange(ctx, len(ow), 1, func(s, e int) {
			for w := s; w < e; w++ {
				ow[w] = f(aw[w], bw[w])
			}
		})
		return nil
	}
}

// FilterPosI32 evaluates a predicate over an int32 column and emits the
// ordered position list of matching rows, the FILTER_POSITION primitive.
// The match count is written to outCount[0]; outPos must be sized for the
// worst case (the runtime estimates it, §III-C prepare_output_buffer).
// Args: in(I32), outPos(I32), outCount(I64 len 1); params: op, lo, hi.
var FilterPosI32 = register(&Kernel{
	Name:    "filter_pos_i32",
	NArgs:   3,
	NParams: 3,
	Source:  "__kernel filter_pos_i32(in, pos, count, op, lo, hi) { /* two-phase scan */ }",
	Fn: func(ctx *Ctx, args []vec.Vector, params []int64) error {
		in := args[0].I32()
		outPos := args[1].I32()
		outCount := args[2].I64()
		if len(outCount) != 1 {
			return fmt.Errorf("%w: filter_pos_i32 count buffer must have 1 element", ErrBadArgs)
		}
		op, lo, hi := CmpOp(params[0]), params[1], params[2]

		// Phase 1: per-span match counts (parallel).
		w := ctx.workers()
		span := (len(in) + w - 1) / w
		if span == 0 {
			span = 1
		}
		nSpans := (len(in) + span - 1) / span
		counts := make([]int, nSpans+1)
		var wg sync.WaitGroup
		for si := 0; si < nSpans; si++ {
			wg.Add(1)
			go func(si int) {
				defer wg.Done()
				s, e := si*span, (si+1)*span
				if e > len(in) {
					e = len(in)
				}
				c := 0
				for i := s; i < e; i++ {
					if op.Matches(int64(in[i]), lo, hi) {
						c++
					}
				}
				counts[si+1] = c
			}(si)
		}
		wg.Wait()

		// Exclusive prefix over span counts.
		for i := 1; i <= nSpans; i++ {
			counts[i] += counts[i-1]
		}
		total := counts[nSpans]
		if total > len(outPos) {
			return fmt.Errorf("%w: filter_pos_i32 output holds %d positions, need %d", ErrBadArgs, len(outPos), total)
		}

		// Phase 2: scatter positions in order (parallel).
		for si := 0; si < nSpans; si++ {
			wg.Add(1)
			go func(si int) {
				defer wg.Done()
				s, e := si*span, (si+1)*span
				if e > len(in) {
					e = len(in)
				}
				at := counts[si]
				for i := s; i < e; i++ {
					if op.Matches(int64(in[i]), lo, hi) {
						outPos[at] = int32(i)
						at++
					}
				}
			}(si)
		}
		wg.Wait()
		outCount[0] = int64(total)
		return nil
	},
	Cost: func(m CostModel, args []vec.Vector, params []int64) vclock.Duration {
		// Two passes over the input plus a scatter of the survivors.
		in := args[0].Bytes()
		return m.SDK.Stream(m.Spec, 2*in) + m.SDK.Random(m.Spec, args[1].Bytes()/4)
	},
})
