package kernels

import (
	"math"
	"testing"

	"github.com/adamant-db/adamant/internal/vec"
)

// TestFusedPredNormalization pins the range form every comparison operator
// decodes to, including the overflow edges (v < MinInt64 and v > MaxInt64
// can never match) and the negated CmpNe.
func TestFusedPredNormalization(t *testing.T) {
	const minI, maxI = math.MinInt64, math.MaxInt64
	cases := []struct {
		op     CmpOp
		lo, hi int64
	}{
		{CmpLt, 10, 0}, {CmpLe, 10, 0}, {CmpGt, 10, 0}, {CmpGe, 10, 0},
		{CmpEq, 10, 0}, {CmpNe, 10, 0}, {CmpBetween, 3, 7},
		{CmpLt, minI, 0}, {CmpGt, maxI, 0}, {CmpOp(99), 5, 9},
	}
	values := []int64{minI, -1, 0, 3, 5, 7, 9, 10, 11, maxI}
	for _, tc := range cases {
		pr := newFusedPred(fusedCol{}, tc.op, tc.lo, tc.hi)
		for _, v := range values {
			got := (v >= pr.lo && v <= pr.hi) != pr.ne
			if want := tc.op.Matches(v, tc.lo, tc.hi); got != want {
				t.Errorf("%v(%d,%d) at %d: normalized %v, Matches %v",
					tc.op, tc.lo, tc.hi, v, got, want)
			}
		}
	}
}

// TestFusedFilterAggMatchesUnfused cross-checks the fused kernel against
// the primitive sequence it replaces, over data sized to straddle several
// selection blocks and worker spans, for every comparison operator and
// both column widths.
func TestFusedFilterAggMatchesUnfused(t *testing.T) {
	const n = 3*fusedBlockRows + 17
	a32 := make([]int32, n)
	b64 := make([]int64, n)
	for i := range a32 {
		a32[i] = int32(i % 97)
		b64[i] = int64((i * 31) % 89)
	}
	a := vec.FromInt32(a32)
	b := vec.FromInt64(b64)
	for _, op := range []CmpOp{CmpLt, CmpLe, CmpGt, CmpGe, CmpEq, CmpNe, CmpBetween} {
		var want int64
		for i := range a32 {
			if op.Matches(int64(a32[i]), 50, 60) && b64[i] < 70 {
				want += int64(a32[i]) * b64[i]
			}
		}
		acc := vec.New(vec.Int64, 1)
		params := []int64{
			2,
			0, int64(op), 50, 60,
			1, int64(CmpLt), 70, 0,
			FusedMapMul, 0, 1, 0,
			int64(AggSum),
		}
		if err := FusedFilterAgg.Fn(testCtx, []vec.Vector{a, b, acc}, params); err != nil {
			t.Fatalf("%v: %v", op, err)
		}
		if got := acc.I64()[0]; got != want {
			t.Errorf("%v: fused sum = %d, want %d", op, got, want)
		}
	}
}

// TestFusedFilterMatOrder verifies the fused compaction emits survivors in
// ascending row order with the exact survivor count, across block and span
// boundaries — the bit-for-bit contract with the unfused MATERIALIZE path.
func TestFusedFilterMatOrder(t *testing.T) {
	const n = 2*fusedBlockRows + 5
	in := make([]int32, n)
	for i := range in {
		in[i] = int32(i)
	}
	out := vec.New(vec.Int32, n)
	count := vec.New(vec.Int64, 1)
	params := []int64{1, 0, int64(CmpNe), 3, 0, FusedMapCol, 0, 0, 0}
	if err := FusedFilterMat.Fn(testCtx, []vec.Vector{vec.FromInt32(in), out, count}, params); err != nil {
		t.Fatal(err)
	}
	if got := count.I64()[0]; got != n-1 {
		t.Fatalf("count = %d, want %d", got, n-1)
	}
	prev := int32(-1)
	for _, v := range out.I32()[:n-1] {
		if v == 3 || v <= prev {
			t.Fatalf("survivor %d out of order (prev %d)", v, prev)
		}
		prev = v
	}
}
