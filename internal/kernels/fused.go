package kernels

import (
	"fmt"
	"math"
	"sync"

	"github.com/adamant-db/adamant/internal/vclock"
	"github.com/adamant-db/adamant/internal/vec"
)

// The fused kernels execute a whole filter→map→{reduce,materialize} chain in
// one pass over the base columns, the single-pass form the fusion pass over
// internal/graph rewrites fusible pipelines into. Instead of one kernel per
// Table-I primitive with bitmap and gathered-column intermediates bounced
// through device memory, a fused launch is an interpreted micro-program:
// the scalar parameters carry a conjunctive predicate list and a map
// expression, the buffer arguments carry the distinct base columns the
// chain touches, and each row is filtered, mapped and reduced (or
// compacted) without ever leaving registers. This mirrors what data-path
// fusion / kernel compilation buys engines like HeavyDB: no intermediate
// allocations, one launch latency, one streaming read of the inputs.
//
// Parameter layout, shared by both fused kernels:
//
//	params[0]            nPred
//	params[1+4p..4+4p]   predicate p: colIdx, CmpOp, lo, hi (AND-combined)
//	then                 mapKind, mapA, mapB, mapK
//	then (agg only)      AggOp
//
// mapKind selects the map expression over column indices mapA/mapB:
//
//	FusedMapCol        int64(col[mapA])            (identity / widening cast)
//	FusedMapMul        int64(a[i]) * int64(b[i])   (map_mul_*)
//	FusedMapMulComp    int64(a[i]) * (K - b[i])    (map_mul_complement_*)
//
// Column indices refer to the leading buffer arguments; the trailing one
// (agg) or two (materialize) arguments are outputs. Columns may be I32 or
// I64 and must share one length.

// Map expression kinds of the fused kernels.
const (
	FusedMapCol int64 = iota
	FusedMapMul
	FusedMapMulComp
)

// fusedCol reads a base column of either width as int64, the register file
// of the interpreted row loop.
type fusedCol struct {
	i32 []int32
	i64 []int64
}

func (c fusedCol) at(i int) int64 {
	if c.i32 != nil {
		return int64(c.i32[i])
	}
	return c.i64[i]
}

// fusedPred is one conjunct, normalized at decode time to an inclusive
// range test v in [lo, hi] (negated for CmpNe) so the row loop runs two
// compares with no operator dispatch.
type fusedPred struct {
	col    fusedCol
	lo, hi int64
	ne     bool
}

// newFusedPred normalizes a (op, lo, hi) predicate to range form. Unknown
// operators yield an empty range, matching CmpOp.Matches returning false.
func newFusedPred(col fusedCol, op CmpOp, lo, hi int64) fusedPred {
	const minI, maxI = math.MinInt64, math.MaxInt64
	p := fusedPred{col: col}
	switch op {
	case CmpLt:
		if lo == minI {
			return fusedPred{col: col, lo: 1, hi: 0} // v < MinInt64: never
		}
		p.lo, p.hi = minI, lo-1
	case CmpLe:
		p.lo, p.hi = minI, lo
	case CmpGt:
		if lo == maxI {
			return fusedPred{col: col, lo: 1, hi: 0}
		}
		p.lo, p.hi = lo+1, maxI
	case CmpGe:
		p.lo, p.hi = lo, maxI
	case CmpEq:
		p.lo, p.hi = lo, lo
	case CmpNe:
		p.lo, p.hi, p.ne = lo, lo, true
	case CmpBetween:
		p.lo, p.hi = lo, hi
	default:
		p.lo, p.hi = 1, 0
	}
	return p
}

// filterDense scans rows [base, base+n) and writes surviving offsets
// (relative to base) into sel, returning the count. The typed loops keep
// the hot path free of per-row dispatch.
func (pr *fusedPred) filterDense(base, n int, sel []int32) int {
	c := 0
	lo, hi, ne := pr.lo, pr.hi, pr.ne
	if s := pr.col.i32; s != nil {
		for i, v := range s[base : base+n] {
			if (int64(v) >= lo && int64(v) <= hi) != ne {
				sel[c] = int32(i)
				c++
			}
		}
		return c
	}
	for i, v := range pr.col.i64[base : base+n] {
		if (v >= lo && v <= hi) != ne {
			sel[c] = int32(i)
			c++
		}
	}
	return c
}

// filterSel refines an existing selection in place, returning the new count.
func (pr *fusedPred) filterSel(base int, sel []int32) int {
	c := 0
	lo, hi, ne := pr.lo, pr.hi, pr.ne
	if s := pr.col.i32; s != nil {
		for _, idx := range sel {
			if v := int64(s[base+int(idx)]); (v >= lo && v <= hi) != ne {
				sel[c] = idx
				c++
			}
		}
		return c
	}
	s := pr.col.i64
	for _, idx := range sel {
		if v := s[base+int(idx)]; (v >= lo && v <= hi) != ne {
			sel[c] = idx
			c++
		}
	}
	return c
}

// fusedProg is the decoded micro-program of one fused launch.
type fusedProg struct {
	cols    []fusedCol
	preds   []fusedPred
	mapKind int64
	mapA    fusedCol
	mapB    fusedCol
	mapK    int64
	rows    int
}

// fusedBlockRows is the selection-vector block size: big enough to
// amortize the per-predicate loop setup, small enough that the selection
// and the touched column slices stay cache-resident.
const fusedBlockRows = 1024

// selectBlock evaluates the conjunctive predicate list over rows
// [base, base+n) and writes the surviving offsets (relative to base, in
// ascending order) into sel, returning the survivor count. The first
// predicate scans densely; the rest refine the shrinking selection, so a
// selective leading conjunct short-circuits the others for most rows.
func (p *fusedProg) selectBlock(base, n int, sel []int32) int {
	if len(p.preds) == 0 {
		for i := 0; i < n; i++ {
			sel[i] = int32(i)
		}
		return n
	}
	c := p.preds[0].filterDense(base, n, sel)
	for k := 1; k < len(p.preds) && c > 0; k++ {
		c = p.preds[k].filterSel(base, sel[:c])
	}
	return c
}

// mapped evaluates the map expression for one row.
func (p *fusedProg) mapped(i int) int64 {
	switch p.mapKind {
	case FusedMapMul:
		return p.mapA.at(i) * p.mapB.at(i)
	case FusedMapMulComp:
		return p.mapA.at(i) * (p.mapK - p.mapB.at(i))
	default:
		return p.mapA.at(i)
	}
}

// decodeFused parses and validates the shared program prefix. nOut is the
// number of trailing output arguments the caller owns.
func decodeFused(name string, args []vec.Vector, params []int64, nOut int) (*fusedProg, int, error) {
	nCols := len(args) - nOut
	if nCols < 1 {
		return nil, 0, fmt.Errorf("%w: %s needs at least one column argument", ErrBadArgs, name)
	}
	if len(params) < 1 {
		return nil, 0, fmt.Errorf("%w: %s missing predicate count", ErrBadArgs, name)
	}
	nPred := int(params[0])
	if nPred < 0 || len(params) < 1+4*nPred+4 {
		return nil, 0, fmt.Errorf("%w: %s has %d params for %d predicates", ErrBadArgs, name, len(params), nPred)
	}
	p := &fusedProg{cols: make([]fusedCol, nCols), rows: args[0].Len()}
	for c := 0; c < nCols; c++ {
		switch args[c].Type() {
		case vec.Int32:
			p.cols[c] = fusedCol{i32: args[c].I32()}
		case vec.Int64:
			p.cols[c] = fusedCol{i64: args[c].I64()}
		default:
			return nil, 0, fmt.Errorf("%w: %s column %d must be Int32 or Int64, got %s", ErrBadArgs, name, c, args[c].Type())
		}
		if args[c].Len() != p.rows {
			return nil, 0, fmt.Errorf("%w: mismatched argument lengths %d vs %d", ErrBadArgs, args[c].Len(), p.rows)
		}
	}
	colAt := func(idx int64) (fusedCol, error) {
		if idx < 0 || int(idx) >= nCols {
			return fusedCol{}, fmt.Errorf("%w: %s column index %d out of %d columns", ErrBadArgs, name, idx, nCols)
		}
		return p.cols[idx], nil
	}
	p.preds = make([]fusedPred, nPred)
	for i := 0; i < nPred; i++ {
		base := 1 + 4*i
		col, err := colAt(params[base])
		if err != nil {
			return nil, 0, err
		}
		p.preds[i] = newFusedPred(col, CmpOp(params[base+1]), params[base+2], params[base+3])
	}
	base := 1 + 4*nPred
	p.mapKind = params[base]
	var err error
	if p.mapA, err = colAt(params[base+1]); err != nil {
		return nil, 0, err
	}
	if p.mapKind == FusedMapMul || p.mapKind == FusedMapMulComp {
		if p.mapB, err = colAt(params[base+2]); err != nil {
			return nil, 0, err
		}
	}
	p.mapK = params[base+3]
	return p, base + 4, nil
}

// fusedCost prices a fused launch as one streaming pass over the base
// columns plus the (tiny or survivor-sized) outputs — the single-pass win:
// no per-primitive launches, no bitmap or gathered-column intermediates,
// no materialization penalty.
func fusedCost(m CostModel, args []vec.Vector, _ []int64) vclock.Duration {
	return streamCost(m, args, nil)
}

// FusedFilterAgg filters, maps and block-reduces in one pass: the fused form
// of a FILTER_BITMAP* → (AND…) → MATERIALIZE* → MAP → AGG_BLOCK chain. The
// result accumulates into out[0] across chunks like agg_block_*. Args:
// col0..colN-1 (I32/I64), out(I64 len 1); params: fused program + AggOp.
var FusedFilterAgg = register(&Kernel{
	Name:    "fused_filter_agg",
	NArgs:   -1,
	NParams: 1,
	Source:  "__kernel fused_filter_agg(cols..., out, prog) { if (pred(i)) acc = agg(acc, map(i)); }",
	Fn: func(ctx *Ctx, args []vec.Vector, params []int64) error {
		if len(args) < 2 {
			return fmt.Errorf("%w: fused_filter_agg needs columns and an output", ErrBadArgs)
		}
		prog, next, err := decodeFused("fused_filter_agg", args, params, 1)
		if err != nil {
			return err
		}
		if len(params) < next+1 {
			return fmt.Errorf("%w: fused_filter_agg missing aggregate op", ErrBadArgs)
		}
		op := AggOp(params[next])
		out := args[len(args)-1]
		if out.Type() != vec.Int64 || out.Len() != 1 {
			return fmt.Errorf("%w: fused_filter_agg output must be I64 len 1", ErrBadArgs)
		}
		w := ctx.workers()
		span := (prog.rows + w - 1) / w
		if span == 0 {
			span = 1
		}
		nSpans := (prog.rows + span - 1) / span
		partial := make([]int64, nSpans)
		var wg sync.WaitGroup
		for si := 0; si < nSpans; si++ {
			wg.Add(1)
			go func(si int) {
				defer wg.Done()
				s, e := si*span, (si+1)*span
				if e > prog.rows {
					e = prog.rows
				}
				var sel [fusedBlockRows]int32
				acc := op.identity()
				for base := s; base < e; base += fusedBlockRows {
					n := e - base
					if n > fusedBlockRows {
						n = fusedBlockRows
					}
					for _, idx := range sel[:prog.selectBlock(base, n, sel[:])] {
						acc = op.combine(acc, prog.mapped(base+int(idx)))
					}
				}
				partial[si] = acc
			}(si)
		}
		wg.Wait()
		acc := op.identity()
		for _, p := range partial {
			acc = op.combine2(acc, p)
		}
		args[len(args)-1].I64()[0] = op.combine2(out.I64()[0], acc)
		return nil
	},
	Cost: fusedCost,
})

// FusedFilterMat filters, maps and compacts survivors into a dense column
// in ascending row order (bit-identical to the unfused MATERIALIZE path),
// writing the survivor count to outCount[0]: the fused form of a filter
// chain feeding a MATERIALIZE (optionally through a MAP). The output takes
// the chain's original type (I32 for a bare materialize of an int32
// column, I64 after a widening map). Args: col0..colN-1 (I32/I64),
// out(I32/I64), outCount(I64 len 1); params: fused program.
var FusedFilterMat = register(&Kernel{
	Name:    "fused_filter_mat",
	NArgs:   -1,
	NParams: 1,
	Source:  "__kernel fused_filter_mat(cols..., out, count) { /* single-pass compaction */ }",
	Fn: func(ctx *Ctx, args []vec.Vector, params []int64) error {
		if len(args) < 3 {
			return fmt.Errorf("%w: fused_filter_mat needs columns, an output and a count", ErrBadArgs)
		}
		prog, _, err := decodeFused("fused_filter_mat", args, params, 2)
		if err != nil {
			return err
		}
		out := args[len(args)-2]
		outCount := args[len(args)-1].I64()
		var assign func(dst, src int)
		switch out.Type() {
		case vec.Int32:
			v := out.I32()
			assign = func(dst, src int) { v[dst] = int32(prog.mapped(src)) }
		case vec.Int64:
			v := out.I64()
			assign = func(dst, src int) { v[dst] = prog.mapped(src) }
		default:
			return fmt.Errorf("%w: fused_filter_mat output must be I32 or I64", ErrBadArgs)
		}
		if len(outCount) != 1 {
			return fmt.Errorf("%w: fused_filter_mat count buffer must have 1 element", ErrBadArgs)
		}

		// Two-phase compaction, like filter_pos: per-span survivor counts,
		// exclusive prefix, then an in-order scatter. Deterministic and
		// identical to the bitmap materialization order.
		w := ctx.workers()
		span := (prog.rows + w - 1) / w
		if span == 0 {
			span = 1
		}
		nSpans := (prog.rows + span - 1) / span
		counts := make([]int, nSpans+1)
		var wg sync.WaitGroup
		for si := 0; si < nSpans; si++ {
			wg.Add(1)
			go func(si int) {
				defer wg.Done()
				s, e := si*span, (si+1)*span
				if e > prog.rows {
					e = prog.rows
				}
				var sel [fusedBlockRows]int32
				c := 0
				for base := s; base < e; base += fusedBlockRows {
					n := e - base
					if n > fusedBlockRows {
						n = fusedBlockRows
					}
					c += prog.selectBlock(base, n, sel[:])
				}
				counts[si+1] = c
			}(si)
		}
		wg.Wait()
		for i := 1; i <= nSpans; i++ {
			counts[i] += counts[i-1]
		}
		total := counts[nSpans]
		if total > out.Len() {
			return fmt.Errorf("%w: fused_filter_mat output holds %d values, need %d", ErrBadArgs, out.Len(), total)
		}
		for si := 0; si < nSpans; si++ {
			wg.Add(1)
			go func(si int) {
				defer wg.Done()
				s, e := si*span, (si+1)*span
				if e > prog.rows {
					e = prog.rows
				}
				var sel [fusedBlockRows]int32
				at := counts[si]
				for base := s; base < e; base += fusedBlockRows {
					n := e - base
					if n > fusedBlockRows {
						n = fusedBlockRows
					}
					for _, idx := range sel[:prog.selectBlock(base, n, sel[:])] {
						assign(at, base+int(idx))
						at++
					}
				}
			}(si)
		}
		wg.Wait()
		outCount[0] = int64(total)
		return nil
	},
	Cost: fusedCost,
})
