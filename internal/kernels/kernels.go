// Package kernels implements the database primitive kernels that ADAMANT's
// task layer plugs into the device drivers.
//
// Every kernel follows an SDK-style calling convention: a flat list of
// buffer arguments (vec.Vector views resolved by the device from its memory
// pool) plus a flat list of scalar parameters, mirroring how clSetKernelArg
// or a CUDA launch passes arguments. Kernels compute real results on the
// host (data-parallel across goroutines, standing in for the SIMT/SIMD
// execution of the modelled device) and expose a separate cost function
// that prices the launch on a given device/SDK combination in virtual time.
//
// The kernel set covers Table I of the paper: MAP, AGG_BLOCK, HASH_AGG,
// HASH_BUILD, HASH_PROBE, SORT_AGG, FILTER_BITMAP, FILTER_POSITION,
// PREFIX_SUM, MATERIALIZE and MATERIALIZE_POSITION, in the type variants
// the TPC-H workloads need.
package kernels

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"github.com/adamant-db/adamant/internal/simhw"
	"github.com/adamant-db/adamant/internal/vclock"
	"github.com/adamant-db/adamant/internal/vec"
)

// Kernel errors.
var (
	ErrUnknownKernel = errors.New("kernels: unknown kernel")
	ErrBadArgs       = errors.New("kernels: bad kernel arguments")
)

// Ctx carries per-launch execution settings.
type Ctx struct {
	// Workers is the number of goroutines a data-parallel kernel may use.
	// Zero means GOMAXPROCS.
	Workers int
}

func (c *Ctx) workers() int {
	if c == nil || c.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Workers
}

// CostModel is the device/SDK pair a launch is priced against.
type CostModel struct {
	Spec *simhw.Spec
	SDK  *simhw.SDKProfile
}

// Func is a kernel body. args are the buffer arguments in kernel-specific
// order; params are scalar parameters. Kernels that produce a variable-sized
// result write its cardinality into a designated 1-element Int64 argument,
// the way GPU kernels return counts through device memory.
type Func func(ctx *Ctx, args []vec.Vector, params []int64) error

// CostFunc prices one launch, excluding the SDK's fixed launch/argument
// mapping overhead (the device driver adds that per Figure 10).
type CostFunc func(m CostModel, args []vec.Vector, params []int64) vclock.Duration

// Kernel bundles a primitive implementation with its cost model and the
// metadata the task layer needs to validate launches.
type Kernel struct {
	Name string
	// NArgs is the expected buffer argument count. Negative means the
	// kernel takes a variable number of arguments and validates the shape
	// itself (the fused kernels, whose column count depends on the chain
	// they replaced).
	NArgs int
	// NParams is the minimum scalar parameter count.
	NParams int
	// Source is a pseudo-source string registered through prepare_kernel
	// on SDKs with runtime compilation.
	Source string
	Fn     Func
	Cost   CostFunc
}

// Validate checks a launch's argument shape.
func (k *Kernel) Validate(args []vec.Vector, params []int64) error {
	if k.NArgs >= 0 && len(args) != k.NArgs {
		return fmt.Errorf("%w: %s expects %d buffer args, got %d", ErrBadArgs, k.Name, k.NArgs, len(args))
	}
	if len(params) < k.NParams {
		return fmt.Errorf("%w: %s expects >=%d params, got %d", ErrBadArgs, k.Name, k.NParams, len(params))
	}
	return nil
}

// Registry maps kernel names to implementations. The zero Registry is empty;
// use NewRegistry for one preloaded with the built-in kernel set.
type Registry struct {
	mu      sync.RWMutex
	kernels map[string]*Kernel
}

// NewRegistry returns a registry containing every built-in kernel.
func NewRegistry() *Registry {
	r := &Registry{kernels: make(map[string]*Kernel)}
	for _, k := range builtins {
		r.kernels[k.Name] = k
	}
	return r
}

// Register adds (or replaces) a kernel, enabling downstream users to plug in
// custom primitive implementations as §III-B of the paper describes.
func (r *Registry) Register(k *Kernel) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.kernels == nil {
		r.kernels = make(map[string]*Kernel)
	}
	r.kernels[k.Name] = k
}

// Lookup resolves a kernel by name.
func (r *Registry) Lookup(name string) (*Kernel, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	k, ok := r.kernels[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownKernel, name)
	}
	return k, nil
}

// Names returns the sorted kernel names, for diagnostics.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.kernels))
	for name := range r.kernels {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

var builtins []*Kernel

func register(k *Kernel) *Kernel {
	builtins = append(builtins, k)
	return k
}

// parallelRange splits [0,n) into contiguous spans, one per worker, and runs
// body(start, end) concurrently. Spans are aligned to align elements so that
// bitmap-producing kernels never share a word between workers. A panic in
// any worker is re-raised in the caller so the device boundary can convert
// it into a launch error.
func parallelRange(ctx *Ctx, n, align int, body func(start, end int)) {
	w := ctx.workers()
	if align < 1 {
		align = 1
	}
	chunk := (n + w - 1) / w
	if chunk < align {
		chunk = align
	}
	chunk = (chunk + align - 1) / align * align
	var wg sync.WaitGroup
	var mu sync.Mutex
	var panicked any
	for start := 0; start < n; start += chunk {
		end := start + chunk
		if end > n {
			end = n
		}
		wg.Add(1)
		go func(s, e int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					mu.Lock()
					if panicked == nil {
						panicked = r
					}
					mu.Unlock()
				}
			}()
			body(s, e)
		}(start, end)
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}
