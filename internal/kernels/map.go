package kernels

import (
	"fmt"

	"github.com/adamant-db/adamant/internal/vclock"
	"github.com/adamant-db/adamant/internal/vec"
)

// streamCost prices a sequential kernel by the bytes it touches.
func streamCost(m CostModel, args []vec.Vector, _ []int64) vclock.Duration {
	var bytes int64
	for _, a := range args {
		bytes += a.Bytes()
	}
	return m.SDK.Stream(m.Spec, bytes)
}

func argLen(args []vec.Vector) int {
	if len(args) == 0 {
		return 0
	}
	return args[0].Len()
}

// MapMulI32I64 multiplies two int32 columns into an int64 column:
// out[i] = a[i] * b[i]. Args: a(I32), b(I32), out(I64).
var MapMulI32I64 = register(&Kernel{
	Name:   "map_mul_i32_i64",
	NArgs:  3,
	Source: "__kernel map_mul_i32_i64(a, b, out) { out[i] = (long)a[i] * b[i]; }",
	Fn: func(ctx *Ctx, args []vec.Vector, _ []int64) error {
		a, b, out := args[0].I32(), args[1].I32(), args[2].I64()
		if err := sameLen(len(a), len(b), len(out)); err != nil {
			return err
		}
		parallelRange(ctx, len(a), 1, func(s, e int) {
			for i := s; i < e; i++ {
				out[i] = int64(a[i]) * int64(b[i])
			}
		})
		return nil
	},
	Cost: streamCost,
})

// MapMulComplementI32I64 computes out[i] = a[i] * (K - b[i]) as an int64,
// the fused form of expressions like extendedprice * (1 - discount) over
// fixed-point columns. Args: a(I32), b(I32), out(I64); params: K.
var MapMulComplementI32I64 = register(&Kernel{
	Name:    "map_mul_complement_i32_i64",
	NArgs:   3,
	NParams: 1,
	Source:  "__kernel map_mul_complement(a, b, out, K) { out[i] = (long)a[i] * (K - b[i]); }",
	Fn: func(ctx *Ctx, args []vec.Vector, params []int64) error {
		a, b, out := args[0].I32(), args[1].I32(), args[2].I64()
		if err := sameLen(len(a), len(b), len(out)); err != nil {
			return err
		}
		k := params[0]
		parallelRange(ctx, len(a), 1, func(s, e int) {
			for i := s; i < e; i++ {
				out[i] = int64(a[i]) * (k - int64(b[i]))
			}
		})
		return nil
	},
	Cost: streamCost,
})

// MapAddI64 adds two int64 columns. Args: a(I64), b(I64), out(I64).
var MapAddI64 = register(&Kernel{
	Name:   "map_add_i64",
	NArgs:  3,
	Source: "__kernel map_add_i64(a, b, out) { out[i] = a[i] + b[i]; }",
	Fn: func(ctx *Ctx, args []vec.Vector, _ []int64) error {
		a, b, out := args[0].I64(), args[1].I64(), args[2].I64()
		if err := sameLen(len(a), len(b), len(out)); err != nil {
			return err
		}
		parallelRange(ctx, len(a), 1, func(s, e int) {
			for i := s; i < e; i++ {
				out[i] = a[i] + b[i]
			}
		})
		return nil
	},
	Cost: streamCost,
})

// MapMulI64 multiplies two int64 columns. Args: a(I64), b(I64), out(I64).
var MapMulI64 = register(&Kernel{
	Name:   "map_mul_i64",
	NArgs:  3,
	Source: "__kernel map_mul_i64(a, b, out) { out[i] = a[i] * b[i]; }",
	Fn: func(ctx *Ctx, args []vec.Vector, _ []int64) error {
		a, b, out := args[0].I64(), args[1].I64(), args[2].I64()
		if err := sameLen(len(a), len(b), len(out)); err != nil {
			return err
		}
		parallelRange(ctx, len(a), 1, func(s, e int) {
			for i := s; i < e; i++ {
				out[i] = a[i] * b[i]
			}
		})
		return nil
	},
	Cost: streamCost,
})

// MapScaleI64 multiplies an int64 column by a scalar. Args: a(I64),
// out(I64); params: factor.
var MapScaleI64 = register(&Kernel{
	Name:    "map_scale_i64",
	NArgs:   2,
	NParams: 1,
	Source:  "__kernel map_scale_i64(a, out, f) { out[i] = a[i] * f; }",
	Fn: func(ctx *Ctx, args []vec.Vector, params []int64) error {
		a, out := args[0].I64(), args[1].I64()
		if err := sameLen(len(a), len(out)); err != nil {
			return err
		}
		f := params[0]
		parallelRange(ctx, len(a), 1, func(s, e int) {
			for i := s; i < e; i++ {
				out[i] = a[i] * f
			}
		})
		return nil
	},
	Cost: streamCost,
})

// MapCastI32I64 widens an int32 column to int64. Args: a(I32), out(I64).
var MapCastI32I64 = register(&Kernel{
	Name:   "map_cast_i32_i64",
	NArgs:  2,
	Source: "__kernel map_cast_i32_i64(a, out) { out[i] = (long)a[i]; }",
	Fn: func(ctx *Ctx, args []vec.Vector, _ []int64) error {
		a, out := args[0].I32(), args[1].I64()
		if err := sameLen(len(a), len(out)); err != nil {
			return err
		}
		parallelRange(ctx, len(a), 1, func(s, e int) {
			for i := s; i < e; i++ {
				out[i] = int64(a[i])
			}
		})
		return nil
	},
	Cost: streamCost,
})

func sameLen(lens ...int) error {
	for _, l := range lens[1:] {
		if l != lens[0] {
			return fmt.Errorf("%w: mismatched argument lengths %v", ErrBadArgs, lens)
		}
	}
	return nil
}
