package kernels

import (
	"fmt"

	"github.com/adamant-db/adamant/internal/vec"
)

// FilterBitmapColCmpI32 compares two int32 columns element-wise and writes
// a bitmap of rows where a[i] op b[i] holds — the column-vs-column predicate
// form needed by TPC-H Q4's l_commitdate < l_receiptdate. Args: a(I32),
// b(I32), out(Bits); params: op.
var FilterBitmapColCmpI32 = register(&Kernel{
	Name:    "filter_bitmap_colcmp_i32",
	NArgs:   3,
	NParams: 1,
	Source:  "__kernel filter_bitmap_colcmp_i32(a, b, out, op) { out.bit[i] = cmp(a[i], b[i]); }",
	Fn: func(ctx *Ctx, args []vec.Vector, params []int64) error {
		a, b := args[0].I32(), args[1].I32()
		out := args[2]
		if len(a) != len(b) {
			return fmt.Errorf("%w: colcmp inputs %d vs %d", ErrBadArgs, len(a), len(b))
		}
		if out.Type() != vec.Bits || out.Len() != len(a) {
			return fmt.Errorf("%w: colcmp output %s for %d inputs", ErrBadArgs, out, len(a))
		}
		op := CmpOp(params[0])
		words := out.Words()
		parallelRange(ctx, len(a), 64, func(s, e int) {
			for w := s / 64; w*64 < e; w++ {
				var bits uint64
				limit := (w + 1) * 64
				if limit > e {
					limit = e
				}
				for i := w * 64; i < limit; i++ {
					if op.Matches(int64(a[i]), int64(b[i]), int64(b[i])) {
						bits |= 1 << uint(i%64)
					}
				}
				words[w] = bits
			}
		})
		return nil
	},
	Cost: streamCost,
})
