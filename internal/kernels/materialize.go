package kernels

import (
	"fmt"
	"math/bits"

	"github.com/adamant-db/adamant/internal/vclock"
	"github.com/adamant-db/adamant/internal/vec"
)

// materializeCost prices late materialization as a scan of the values and
// bitmap scaled by the SDK's extraction penalty: GPUs pay for cooperative
// bit extraction across threads (Figure 9(b) shows them dropping to ~30%
// of bitmap-only throughput); CPUs, which schedule 32-value runs per
// thread, extract almost for free.
func materializeCost(m CostModel, args []vec.Vector, _ []int64) vclock.Duration {
	in := args[0].Bytes() + args[1].Bytes()
	base := m.SDK.Stream(m.Spec, in)
	pen := m.SDK.MaterializePenalty
	if pen <= 0 {
		pen = 1
	}
	return vclock.Duration(float64(base) * pen)
}

// MaterializeBitmapI32 compacts the rows selected by a bitmap into a dense
// int32 column (the MATERIALIZE primitive). The survivor count is written
// to outCount[0]. Args: values(I32), bitmap(Bits), out(I32), outCount(I64
// len 1).
var MaterializeBitmapI32 = register(&Kernel{
	Name:   "materialize_bitmap_i32",
	NArgs:  4,
	Source: "__kernel materialize_bitmap_i32(v, bm, out, count) { /* compaction */ }",
	Fn: func(ctx *Ctx, args []vec.Vector, _ []int64) error {
		values := args[0].I32()
		return materializeBitmap(ctx, args, len(values), func(dst, src int) {
			args[2].I32()[dst] = values[src]
		})
	},
	Cost: materializeCost,
})

// MaterializeBitmapI64 is MaterializeBitmapI32 for int64 value columns.
// Args: values(I64), bitmap(Bits), out(I64), outCount(I64 len 1).
var MaterializeBitmapI64 = register(&Kernel{
	Name:   "materialize_bitmap_i64",
	NArgs:  4,
	Source: "__kernel materialize_bitmap_i64(v, bm, out, count) { /* compaction */ }",
	Fn: func(ctx *Ctx, args []vec.Vector, _ []int64) error {
		values := args[0].I64()
		return materializeBitmap(ctx, args, len(values), func(dst, src int) {
			args[2].I64()[dst] = values[src]
		})
	},
	Cost: materializeCost,
})

// materializeBitmap runs the shared compaction logic: a word-popcount prefix
// pass to find scatter bases, then a parallel extract.
func materializeBitmap(ctx *Ctx, args []vec.Vector, n int, assign func(dst, src int)) error {
	bm := args[1]
	outCount := args[3].I64()
	if bm.Type() != vec.Bits {
		return fmt.Errorf("%w: materialize bitmap argument must be Bits", ErrBadArgs)
	}
	if bm.Len() != n {
		return fmt.Errorf("%w: bitmap covers %d rows, values have %d", ErrBadArgs, bm.Len(), n)
	}
	if len(outCount) != 1 {
		return fmt.Errorf("%w: materialize count buffer must have 1 element", ErrBadArgs)
	}
	words := bm.Words()
	nw := (n + 63) / 64
	base := make([]int32, nw+1)
	for w := 0; w < nw; w++ {
		ww := words[w]
		if w == nw-1 && n%64 != 0 {
			ww &= 1<<uint(n%64) - 1
		}
		base[w+1] = base[w] + int32(bits.OnesCount64(ww))
	}
	total := int(base[nw])
	if total > args[2].Len() {
		return fmt.Errorf("%w: materialize output holds %d values, need %d", ErrBadArgs, args[2].Len(), total)
	}
	parallelRange(ctx, n, 64, func(s, e int) {
		for w := s / 64; w*64 < e; w++ {
			at := int(base[w])
			limit := (w + 1) * 64
			if limit > e {
				limit = e
			}
			ww := words[w]
			for ww != 0 {
				i := w*64 + bits.TrailingZeros64(ww)
				if i >= limit {
					break
				}
				assign(at, i)
				at++
				ww &= ww - 1
			}
		}
	})
	outCount[0] = int64(total)
	return nil
}

// MaterializePosI32 gathers values by an explicit position list (the
// MATERIALIZE_POSITION primitive). Every position must be in range for the
// value column. Args: values(I32), positions(I32), out(I32).
var MaterializePosI32 = register(&Kernel{
	Name:   "materialize_pos_i32",
	NArgs:  3,
	Source: "__kernel materialize_pos_i32(v, pos, out) { out[i] = v[pos[i]]; }",
	Fn: func(ctx *Ctx, args []vec.Vector, _ []int64) error {
		values := args[0].I32()
		return materializePos(ctx, args, len(values), func(dst, src int) {
			args[2].I32()[dst] = values[src]
		})
	},
	Cost: gatherCost,
})

// MaterializePosI64 is MaterializePosI32 for int64 value columns. Args:
// values(I64), positions(I32), out(I64).
var MaterializePosI64 = register(&Kernel{
	Name:   "materialize_pos_i64",
	NArgs:  3,
	Source: "__kernel materialize_pos_i64(v, pos, out) { out[i] = v[pos[i]]; }",
	Fn: func(ctx *Ctx, args []vec.Vector, _ []int64) error {
		values := args[0].I64()
		return materializePos(ctx, args, len(values), func(dst, src int) {
			args[2].I64()[dst] = values[src]
		})
	},
	Cost: gatherCost,
})

func materializePos(ctx *Ctx, args []vec.Vector, nValues int, assign func(dst, src int)) error {
	pos := args[1].I32()
	if args[2].Len() < len(pos) {
		return fmt.Errorf("%w: materialize_pos output holds %d, need %d", ErrBadArgs, args[2].Len(), len(pos))
	}
	var bad error
	parallelRange(ctx, len(pos), 1, func(s, e int) {
		for i := s; i < e; i++ {
			p := int(pos[i])
			if p < 0 || p >= nValues {
				bad = fmt.Errorf("%w: position %d out of %d values", ErrBadArgs, p, nValues)
				return
			}
			assign(i, p)
		}
	})
	return bad
}

func gatherCost(m CostModel, args []vec.Vector, _ []int64) vclock.Duration {
	// Sequential read of the position list, random gather of the values.
	return m.SDK.Stream(m.Spec, args[1].Bytes()) + m.SDK.Random(m.Spec, args[2].Bytes())
}
