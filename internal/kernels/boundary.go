package kernels

import (
	"github.com/adamant-db/adamant/internal/vec"
)

// MapBoundaryI32 emits the group-transition indicator of a sorted key
// column: out[i] = 1 when in[i] differs from in[i-1] (out[0] = 0). An
// inclusive prefix sum over the output yields each row's group index, the
// PREFIX_SUM input SORT_AGG expects. Args: in(I32), out(I32).
var MapBoundaryI32 = register(&Kernel{
	Name:   "map_boundary_i32",
	NArgs:  2,
	Source: "__kernel map_boundary_i32(in, out) { out[i] = i > 0 && in[i] != in[i-1]; }",
	Fn: func(ctx *Ctx, args []vec.Vector, _ []int64) error {
		in, out := args[0].I32(), args[1].I32()
		if err := sameLen(len(in), len(out)); err != nil {
			return err
		}
		parallelRange(ctx, len(in), 1, func(s, e int) {
			for i := s; i < e; i++ {
				if i > 0 && in[i] != in[i-1] {
					out[i] = 1
				} else {
					out[i] = 0
				}
			}
		})
		return nil
	},
	Cost: streamCost,
})

// PrefixSumInclusiveI32 computes the inclusive prefix sum of an int32
// column: out[i] = sum(in[0..i]). Combined with MapBoundaryI32 it yields
// group indexes over sorted keys. Args: in(I32), out(I32).
var PrefixSumInclusiveI32 = register(&Kernel{
	Name:   "prefix_sum_inclusive_i32",
	NArgs:  2,
	Source: "__kernel prefix_sum_inclusive_i32(in, out) { /* blockwise scan */ }",
	Fn: func(ctx *Ctx, args []vec.Vector, _ []int64) error {
		in, out := args[0].I32(), args[1].I32()
		if err := sameLen(len(in), len(out)); err != nil {
			return err
		}
		scanExclusiveI32(ctx, in, out)
		parallelRange(ctx, len(in), 1, func(s, e int) {
			for i := s; i < e; i++ {
				out[i] += in[i]
			}
		})
		return nil
	},
	Cost: prefixCost,
})
