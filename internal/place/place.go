// Package place implements device placement for primitive graphs — the
// "operator placement" dimension of the optimization space the paper's
// conclusion calls out.
//
// The placer works at pipeline granularity: a pipeline's primitives share
// un-materialized intermediates, so they must run on one device, while
// pipeline boundaries already materialize (breaker outputs) and route
// between devices. For each pipeline it estimates, per candidate device,
// the streamed transfer cost plus an analytic kernel-cost estimate, and
// annotates the pipeline's nodes with the cheapest device.
//
// The estimator never runs the query: it probes each device's transfer
// link through the regular device interface and prices kernels analytically
// by family (streaming vs hash vs materialize). On the modelled hardware
// this reproduces the classic placement folklore: streaming
// filter/aggregate pipelines stay on the CPU (PCIe is slower than host
// memory), while hash-heavy pipelines move to the GPU.
package place

import (
	"fmt"
	"strings"

	"github.com/adamant-db/adamant/internal/device"
	"github.com/adamant-db/adamant/internal/graph"
	"github.com/adamant-db/adamant/internal/hub"
	"github.com/adamant-db/adamant/internal/vclock"
	"github.com/adamant-db/adamant/internal/vec"
)

// Estimate is the predicted cost of one pipeline on one device.
type Estimate struct {
	Pipeline int
	Device   device.ID
	Transfer vclock.Duration
	Compute  vclock.Duration
}

// Total returns the pipeline's estimated serial cost.
func (e Estimate) Total() vclock.Duration { return e.Transfer + e.Compute }

// Decision records one pipeline's placement.
type Decision struct {
	Pipeline  int
	Chosen    device.ID
	Estimates []Estimate
}

// Coster prices one pipeline on one device. The analytic coster ships with
// this package; a measured coster (e.g. the cost catalog in internal/cost)
// can substitute learned per-primitive rates while reusing the same greedy
// search.
type Coster interface {
	EstimatePipeline(g *graph.Graph, p *graph.Pipeline, id device.ID, dev device.Device) (Estimate, error)
}

// analyticCoster prices pipelines with the built-in analytic model.
type analyticCoster struct{}

func (analyticCoster) EstimatePipeline(g *graph.Graph, p *graph.Pipeline, id device.ID, dev device.Device) (Estimate, error) {
	return estimate(g, p, id, dev)
}

// Analytic returns the built-in analytic coster: probe transfers for the
// link rate, per-family kernel rates for compute.
func Analytic() Coster { return analyticCoster{} }

// Greedy annotates every node of the graph with the cheapest candidate
// device for its pipeline and returns the per-pipeline decisions. The
// graph must validate; candidates must be registered on the runtime.
func Greedy(g *graph.Graph, rt *hub.Runtime, candidates []device.ID) ([]Decision, error) {
	return GreedyWith(g, rt, candidates, Analytic())
}

// GreedyWith is Greedy under a caller-supplied coster.
func GreedyWith(g *graph.Graph, rt *hub.Runtime, candidates []device.ID, c Coster) ([]Decision, error) {
	if len(candidates) == 0 {
		return nil, fmt.Errorf("place: no candidate devices")
	}
	pipelines, err := g.BuildPipelines()
	if err != nil {
		return nil, err
	}

	var decisions []Decision
	for _, p := range pipelines {
		d := Decision{Pipeline: p.Index}
		best := -1
		for _, cand := range candidates {
			dev, err := rt.Device(cand)
			if err != nil {
				return nil, err
			}
			est, err := c.EstimatePipeline(g, p, cand, dev)
			if err != nil {
				return nil, err
			}
			d.Estimates = append(d.Estimates, est)
			if best < 0 || est.Total() < d.Estimates[best].Total() {
				best = len(d.Estimates) - 1
			}
		}
		d.Chosen = d.Estimates[best].Device
		decisions = append(decisions, d)

		for _, nid := range p.Nodes {
			g.Node(nid).Device = d.Chosen
		}
		for _, sid := range p.Scans {
			g.Node(sid).Device = d.Chosen
		}
	}
	return decisions, nil
}

// estimate prices one pipeline on one device analytically.
func estimate(g *graph.Graph, p *graph.Pipeline, id device.ID, dev device.Device) (Estimate, error) {
	info := dev.Info()
	est := Estimate{Pipeline: p.Index, Device: id}

	// Streamed inputs cross the device link (free for host-resident
	// devices). Bandwidth estimates come from a probe transfer of the
	// modelled link via a reference size.
	var scanBytes int64
	for _, sid := range p.Scans {
		scanBytes += g.Node(sid).Scan.Data.Bytes()
	}
	if scanBytes > 0 && !info.HostResident {
		est.Transfer = probeTransferCost(dev, scanBytes)
	}

	rows := int64(p.ScanRows(g))
	for _, nid := range p.Nodes {
		n := g.Node(nid)
		est.Compute += kernelEstimate(dev, n.Task.Kernel, rows)
	}
	return est, nil
}

// ProbeTransferCost prices a host-to-device transfer of the given size by
// probing the device link. Exported for costers that fall back to the
// analytic model for links they have not yet measured.
func ProbeTransferCost(dev device.Device, bytes int64) vclock.Duration {
	return probeTransferCost(dev, bytes)
}

// KernelEstimate prices one primitive analytically. Exported for costers
// that fall back to the analytic model for kernels they have not measured.
func KernelEstimate(dev device.Device, kernel string, rows int64) vclock.Duration {
	return kernelEstimate(dev, kernel, rows)
}

// probeTransferCost derives the device's effective H2D rate from a small
// probing transfer on a scratch timeline, then scales to the actual bytes.
// This keeps the estimator independent of the cost-model internals: it
// observes the same interface the runtime uses.
func probeTransferCost(dev device.Device, bytes int64) vclock.Duration {
	const probeElems = 1 << 16
	buf, done, err := dev.PrepareMemory(probeVectorType, probeElems, dev.CopyEngine().Avail())
	if err != nil {
		return vclock.Duration(bytes) // capacity-constrained: effectively infinite cost per byte
	}
	defer dev.DeleteMemory(buf)
	end, err := dev.PlaceDataInto(buf, 0, probeVector(probeElems), done)
	if err != nil {
		return vclock.Duration(bytes)
	}
	per := float64(end.Sub(done)) / float64(probeElems*4)
	return vclock.Duration(per * float64(bytes))
}

// kernelEstimate prices one primitive analytically from the device's
// class: streaming kernels at sequential bandwidth, hash kernels at
// contended-atomic/random rates (a fixed per-row cost), with a per-launch
// overhead. Kernel families are recognized by name so custom
// implementations registered under the hash_*/materialize_* conventions
// estimate sensibly too.
func kernelEstimate(dev device.Device, kernel string, rows int64) vclock.Duration {
	info := dev.Info()
	// Host-resident devices stream at tens of GB/s; discrete GPUs an
	// order of magnitude faster, but with much slower random/atomic paths
	// relative to their streaming rate.
	streamNsPerByte := 1.0 / 30.0
	hashNsPerRow := 2.5
	if !info.HostResident {
		streamNsPerByte = 1.0 / 500.0
		hashNsPerRow = 1.2
	}

	const launch = 10 * vclock.Microsecond
	switch {
	case strings.HasPrefix(kernel, "hash_"):
		return launch + vclock.Duration(hashNsPerRow*float64(rows))
	case strings.HasPrefix(kernel, "materialize_"):
		return launch + vclock.Duration(streamNsPerByte*float64(8*rows)*2)
	default:
		return launch + vclock.Duration(streamNsPerByte*float64(8*rows))
	}
}

// probeVectorType and probeVector back the link-probing transfer.
const probeVectorType = vec.Int32

var probeData = make([]int32, 1<<16)

func probeVector(n int) vec.Vector { return vec.FromInt32(probeData[:n]) }
