package place

import (
	"testing"

	"github.com/adamant-db/adamant/internal/device"
	"github.com/adamant-db/adamant/internal/driver/simcuda"
	"github.com/adamant-db/adamant/internal/driver/simomp"
	"github.com/adamant-db/adamant/internal/exec"
	"github.com/adamant-db/adamant/internal/graph"
	"github.com/adamant-db/adamant/internal/hub"
	"github.com/adamant-db/adamant/internal/kernels"
	"github.com/adamant-db/adamant/internal/simhw"
	"github.com/adamant-db/adamant/internal/task"
	"github.com/adamant-db/adamant/internal/vec"
)

func runtimeCPUGPU(t *testing.T) (*hub.Runtime, device.ID, device.ID) {
	t.Helper()
	rt := hub.NewRuntime()
	cpu, err := rt.Register(simomp.New(&simhw.CoreI78700, nil))
	if err != nil {
		t.Fatal(err)
	}
	gpu, err := rt.Register(simcuda.New(&simhw.RTX2080Ti, nil))
	if err != nil {
		t.Fatal(err)
	}
	return rt, cpu, gpu
}

// streamingGraph: filter + count over one column — transfer-dominated.
func streamingGraph(t *testing.T, rows int, dev device.ID) *graph.Graph {
	t.Helper()
	g := graph.New()
	s := g.AddScan("t.a", vec.New(vec.Int32, rows), dev)
	f := g.AddTask(task.NewFilterBitmap(kernels.CmpLt, 10, 0, "f"), dev, s)
	c := g.AddTask(task.NewAggCountBits("count"), dev, g.Out(f, 0))
	g.MarkResult("count", g.Out(c, 0))
	return g
}

// hashGraph: build + probe + group over key columns — compute-dominated.
func hashGraph(t *testing.T, rows int, dev device.ID) *graph.Graph {
	t.Helper()
	g := graph.New()
	bk := g.AddScan("b.k", vec.New(vec.Int32, rows), dev)
	build := g.AddTask(task.NewHashBuildSet(rows, "set"), dev, bk)
	pk := g.AddScan("p.k", vec.New(vec.Int32, rows), dev)
	semi := g.AddTask(task.NewSemiJoinFilter("in"), dev, pk, g.Out(build, 0))
	cnt := g.AddTask(task.NewAggCountBits("count"), dev, g.Out(semi, 0))
	g.MarkResult("count", g.Out(cnt, 0))
	return g
}

func TestStreamingPipelineStaysOnCPU(t *testing.T) {
	rt, cpu, gpu := runtimeCPUGPU(t)
	g := streamingGraph(t, 1<<20, gpu) // mis-placed on the GPU initially
	decisions, err := Greedy(g, rt, []device.ID{cpu, gpu})
	if err != nil {
		t.Fatal(err)
	}
	if len(decisions) != 1 {
		t.Fatalf("decisions = %d", len(decisions))
	}
	if decisions[0].Chosen != cpu {
		t.Errorf("streaming pipeline placed on %v, want CPU: %+v", decisions[0].Chosen, decisions[0].Estimates)
	}
	for _, n := range g.Nodes() {
		if n.Device != cpu {
			t.Fatalf("node %s not re-annotated", n)
		}
	}
}

func TestHashPipelineMovesToGPU(t *testing.T) {
	rt, cpu, gpu := runtimeCPUGPU(t)
	g := hashGraph(t, 1<<21, cpu) // mis-placed on the CPU initially
	decisions, err := Greedy(g, rt, []device.ID{cpu, gpu})
	if err != nil {
		t.Fatal(err)
	}
	// The build pipeline is hash-dominated; the probe pipeline as well.
	for _, d := range decisions {
		if d.Chosen != gpu {
			t.Errorf("pipeline %d placed on %v, want GPU: %+v", d.Pipeline, d.Chosen, d.Estimates)
		}
	}
}

func TestPlacedGraphExecutes(t *testing.T) {
	rt, cpu, gpu := runtimeCPUGPU(t)
	rows := 1 << 16
	g := hashGraph(t, rows, cpu)
	if _, err := Greedy(g, rt, []device.ID{cpu, gpu}); err != nil {
		t.Fatal(err)
	}
	res, err := exec.Run(rt, g, exec.Options{Model: exec.Chunked, ChunkElems: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	col, ok := res.Column("count")
	if !ok || col.I64()[0] != int64(rows) {
		t.Errorf("count = %v, want %d (zero keys all match)", col, rows)
	}
}

func TestGreedyErrors(t *testing.T) {
	rt, cpu, _ := runtimeCPUGPU(t)
	g := streamingGraph(t, 64, cpu)
	if _, err := Greedy(g, rt, nil); err == nil {
		t.Error("no candidates accepted")
	}
	if _, err := Greedy(g, rt, []device.ID{99}); err == nil {
		t.Error("unknown device accepted")
	}
	bad := graph.New()
	if _, err := Greedy(bad, rt, []device.ID{cpu}); err == nil {
		t.Error("invalid graph accepted")
	}
}

func TestEstimateShapes(t *testing.T) {
	rt, cpu, gpu := runtimeCPUGPU(t)
	g := streamingGraph(t, 1<<20, cpu)
	decisions, err := Greedy(g, rt, []device.ID{cpu, gpu})
	if err != nil {
		t.Fatal(err)
	}
	var cpuEst, gpuEst Estimate
	for _, e := range decisions[0].Estimates {
		if e.Device == cpu {
			cpuEst = e
		} else {
			gpuEst = e
		}
	}
	if cpuEst.Transfer != 0 {
		t.Errorf("host-resident transfer estimate = %v, want 0", cpuEst.Transfer)
	}
	if gpuEst.Transfer <= 0 {
		t.Error("GPU transfer estimate missing")
	}
	if gpuEst.Compute >= cpuEst.Compute {
		t.Errorf("GPU compute (%v) should beat CPU (%v) for the kernel bodies", gpuEst.Compute, cpuEst.Compute)
	}
}
