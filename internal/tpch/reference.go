package tpch

// Host-side reference implementations of the evaluated queries, used by the
// test suite to verify that every execution model on every device driver
// produces exactly the same answers.

// RefQ6 computes Q6's revenue sum directly over the host columns.
func RefQ6(d *Dataset) int64 {
	ship := d.Lineitem.MustColumn("l_shipdate").I32()
	disc := d.Lineitem.MustColumn("l_discount").I32()
	qty := d.Lineitem.MustColumn("l_quantity").I32()
	price := d.Lineitem.MustColumn("l_extendedprice").I32()
	var sum int64
	for i := range ship {
		if ship[i] >= DateQ6Lo && ship[i] < DateQ6Hi &&
			disc[i] >= 5 && disc[i] <= 7 && qty[i] < 24 {
			sum += int64(price[i]) * int64(disc[i])
		}
	}
	return sum
}

// RefQ3 computes Q3's revenue per orderkey.
func RefQ3(d *Dataset) map[int64]int64 {
	seg := d.Customer.MustColumn("c_mktsegment").I32()
	ckey := d.Customer.MustColumn("c_custkey").I32()
	custs := make(map[int32]bool)
	for i := range seg {
		if seg[i] == SegBuilding {
			custs[ckey[i]] = true
		}
	}

	odate := d.Orders.MustColumn("o_orderdate").I32()
	ocust := d.Orders.MustColumn("o_custkey").I32()
	okey := d.Orders.MustColumn("o_orderkey").I32()
	orders := make(map[int32]bool)
	for i := range odate {
		if odate[i] < DateQ3 && custs[ocust[i]] {
			orders[okey[i]] = true
		}
	}

	lkey := d.Lineitem.MustColumn("l_orderkey").I32()
	lship := d.Lineitem.MustColumn("l_shipdate").I32()
	lprice := d.Lineitem.MustColumn("l_extendedprice").I32()
	ldisc := d.Lineitem.MustColumn("l_discount").I32()
	rev := make(map[int64]int64)
	for i := range lkey {
		if lship[i] > DateQ3 && orders[lkey[i]] {
			rev[int64(lkey[i])] += int64(lprice[i]) * (100 - int64(ldisc[i]))
		}
	}
	return rev
}

// RefQ4 computes Q4's order counts per priority.
func RefQ4(d *Dataset) map[int64]int64 {
	commit := d.Lineitem.MustColumn("l_commitdate").I32()
	receipt := d.Lineitem.MustColumn("l_receiptdate").I32()
	lkey := d.Lineitem.MustColumn("l_orderkey").I32()
	late := make(map[int32]bool)
	for i := range commit {
		if commit[i] < receipt[i] {
			late[lkey[i]] = true
		}
	}

	odate := d.Orders.MustColumn("o_orderdate").I32()
	okey := d.Orders.MustColumn("o_orderkey").I32()
	oprio := d.Orders.MustColumn("o_orderpriority").I32()
	counts := make(map[int64]int64)
	for i := range odate {
		if odate[i] >= DateQ4Lo && odate[i] < DateQ4Hi && late[okey[i]] {
			counts[int64(oprio[i])]++
		}
	}
	return counts
}

// RefQ1 computes Q1's per-group sums and counts.
type Q1Group struct {
	SumQty int64
	SumRev int64
	Count  int64
}

// RefQ1 computes Q1's aggregates per return-flag/line-status group.
func RefQ1(d *Dataset) map[int64]Q1Group {
	ship := d.Lineitem.MustColumn("l_shipdate").I32()
	rfls := d.Lineitem.MustColumn("l_rfls").I32()
	qty := d.Lineitem.MustColumn("l_quantity").I32()
	price := d.Lineitem.MustColumn("l_extendedprice").I32()
	disc := d.Lineitem.MustColumn("l_discount").I32()
	groups := make(map[int64]Q1Group)
	for i := range ship {
		if ship[i] > DateQ1Cutoff {
			continue
		}
		g := groups[int64(rfls[i])]
		g.SumQty += int64(qty[i])
		g.SumRev += int64(price[i]) * (100 - int64(disc[i]))
		g.Count++
		groups[int64(rfls[i])] = g
	}
	return groups
}
