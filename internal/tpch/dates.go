package tpch

// TPC-H dates are stored as int32 days since the epoch 1992-01-01, the
// first order date of the benchmark. Encoding dates as plain integers keeps
// every column a NUMERIC primitive input, as the paper's integer-column
// evaluation does.

// civilToDays converts a Gregorian calendar date to days since 1970-01-01
// (Howard Hinnant's days-from-civil algorithm).
func civilToDays(y, m, d int) int64 {
	if m <= 2 {
		y--
	}
	era := y / 400
	if y < 0 {
		era = (y - 399) / 400
	}
	yoe := y - era*400
	mAdj := m + 9
	if m > 2 {
		mAdj = m - 3
	}
	doy := (153*mAdj+2)/5 + d - 1
	doe := yoe*365 + yoe/4 - yoe/100 + doy
	return int64(era)*146097 + int64(doe) - 719468
}

var epochDays = civilToDays(1992, 1, 1)

// Date encodes a Gregorian date as TPC-H epoch days.
func Date(y, m, d int) int32 {
	return int32(civilToDays(y, m, d) - epochDays)
}

// Well-known predicate dates of the evaluated queries.
var (
	DateQ1Cutoff = Date(1998, 12, 1) - 90 // l_shipdate <= date '1998-12-01' - 90 days
	DateQ3       = Date(1995, 3, 15)
	DateQ4Lo     = Date(1993, 7, 1)
	DateQ4Hi     = Date(1993, 10, 1) // exclusive
	DateQ6Lo     = Date(1994, 1, 1)
	DateQ6Hi     = Date(1995, 1, 1) // exclusive
)
