package tpch

import (
	"fmt"

	"github.com/adamant-db/adamant/internal/device"
	"github.com/adamant-db/adamant/internal/graph"
	"github.com/adamant-db/adamant/internal/kernels"
	"github.com/adamant-db/adamant/internal/task"
	"github.com/adamant-db/adamant/internal/vec"
)

// Plan builders translate the evaluated TPC-H queries into annotated
// primitive graphs, playing the role of the optimizer front-end the paper
// assumes ("a query plan generated from any existing optimizer, translated
// into a primitive graph with annotations"). Every node is annotated with
// the target device; the runtime handles the rest.

// BuildQuery dispatches on the query name ("Q1", "Q3", "Q4", "Q6").
func BuildQuery(q string, d *Dataset, dev device.ID) (*graph.Graph, error) {
	switch q {
	case "Q1":
		return BuildQ1(d, dev)
	case "Q3":
		return BuildQ3(d, dev)
	case "Q4":
		return BuildQ4(d, dev)
	case "Q6":
		return BuildQ6(d, dev)
	default:
		return nil, fmt.Errorf("tpch: unknown query %q", q)
	}
}

// BuildQ6 plans the forecasting-revenue-change query: a heavy scan of
// lineitem with three conjunctive filters and one SUM — the paper's
// "heavy aggregation" representative.
//
//	SELECT sum(l_extendedprice * l_discount) FROM lineitem
//	WHERE l_shipdate >= '1994-01-01' AND l_shipdate < '1995-01-01'
//	  AND l_discount BETWEEN 5 AND 7 AND l_quantity < 24
func BuildQ6(d *Dataset, dev device.ID) (*graph.Graph, error) {
	g := graph.New()
	li := d.Lineitem
	ship := g.AddScan("lineitem.l_shipdate", li.MustColumn("l_shipdate"), dev)
	disc := g.AddScan("lineitem.l_discount", li.MustColumn("l_discount"), dev)
	qty := g.AddScan("lineitem.l_quantity", li.MustColumn("l_quantity"), dev)
	price := g.AddScan("lineitem.l_extendedprice", li.MustColumn("l_extendedprice"), dev)

	fShip := g.AddTask(task.NewFilterBitmap(kernels.CmpBetween, int64(DateQ6Lo), int64(DateQ6Hi-1), "l_shipdate in 1994"), dev, ship)
	fDisc := g.AddTask(task.NewFilterBitmap(kernels.CmpBetween, 5, 7, "l_discount in [5,7]"), dev, disc)
	fQty := g.AddTask(task.NewFilterBitmap(kernels.CmpLt, 24, 0, "l_quantity<24"), dev, qty)
	and1 := g.AddTask(task.NewBitmapAnd(), dev, g.Out(fShip, 0), g.Out(fDisc, 0))
	and2 := g.AddTask(task.NewBitmapAnd(), dev, g.Out(and1, 0), g.Out(fQty, 0))

	mPrice, err := task.NewMaterialize(vec.Int32, "l_extendedprice")
	if err != nil {
		return nil, err
	}
	mDisc, err := task.NewMaterialize(vec.Int32, "l_discount")
	if err != nil {
		return nil, err
	}
	matPrice := g.AddTask(mPrice, dev, price, g.Out(and2, 0))
	matDisc := g.AddTask(mDisc, dev, disc, g.Out(and2, 0))

	rev := g.AddTask(task.NewMapMul("price*discount"), dev, g.Out(matPrice, 0), g.Out(matDisc, 0))

	aggT, err := task.NewAggBlock(kernels.AggSum, vec.Int64, "sum(revenue)")
	if err != nil {
		return nil, err
	}
	agg := g.AddTask(aggT, dev, g.Out(rev, 0))
	g.MarkResult("revenue", g.Out(agg, 0))
	return g, nil
}

// BuildQ3 plans the shipping-priority query, the paper's "multiple joins"
// representative, grouped by l_orderkey (the group key determines
// o_orderdate and o_shippriority, which the host can join back from the
// orders table for presentation).
//
//	SELECT l_orderkey, sum(l_extendedprice*(1-l_discount)) AS revenue
//	FROM customer, orders, lineitem
//	WHERE c_mktsegment = 'BUILDING' AND c_custkey = o_custkey
//	  AND l_orderkey = o_orderkey AND o_orderdate < '1995-03-15'
//	  AND l_shipdate > '1995-03-15'
//	GROUP BY l_orderkey
func BuildQ3(d *Dataset, dev device.ID) (*graph.Graph, error) {
	g := graph.New()
	cu, or, li := d.Customer, d.Orders, d.Lineitem

	// Pipeline 1: qualifying customers into a key set.
	seg := g.AddScan("customer.c_mktsegment", cu.MustColumn("c_mktsegment"), dev)
	ckey := g.AddScan("customer.c_custkey", cu.MustColumn("c_custkey"), dev)
	fSeg := g.AddTask(task.NewFilterBitmap(kernels.CmpEq, int64(SegBuilding), 0, "c_mktsegment=BUILDING"), dev, seg)
	mCust, err := task.NewMaterialize(vec.Int32, "c_custkey")
	if err != nil {
		return nil, err
	}
	matCust := g.AddTask(mCust, dev, ckey, g.Out(fSeg, 0))
	bCust := g.AddTask(task.NewHashBuildSet(cu.Rows(), "build(custkey set)"), dev, g.Out(matCust, 0))

	// Pipeline 2: qualifying orders into a key set.
	odate := g.AddScan("orders.o_orderdate", or.MustColumn("o_orderdate"), dev)
	ocust := g.AddScan("orders.o_custkey", or.MustColumn("o_custkey"), dev)
	okey := g.AddScan("orders.o_orderkey", or.MustColumn("o_orderkey"), dev)
	fDate := g.AddTask(task.NewFilterBitmap(kernels.CmpLt, int64(DateQ3), 0, "o_orderdate<1995-03-15"), dev, odate)
	fCust := g.AddTask(task.NewSemiJoinFilter("o_custkey in customers"), dev, ocust, g.Out(bCust, 0))
	andO := g.AddTask(task.NewBitmapAnd(), dev, g.Out(fDate, 0), g.Out(fCust, 0))
	mOkey, err := task.NewMaterialize(vec.Int32, "o_orderkey")
	if err != nil {
		return nil, err
	}
	matOkey := g.AddTask(mOkey, dev, okey, g.Out(andO, 0))
	bOrd := g.AddTask(task.NewHashBuildSet(or.Rows(), "build(orderkey set)"), dev, g.Out(matOkey, 0))

	// Pipeline 3: lineitem probe, revenue, group-by orderkey.
	lkey := g.AddScan("lineitem.l_orderkey", li.MustColumn("l_orderkey"), dev)
	lship := g.AddScan("lineitem.l_shipdate", li.MustColumn("l_shipdate"), dev)
	lprice := g.AddScan("lineitem.l_extendedprice", li.MustColumn("l_extendedprice"), dev)
	ldisc := g.AddScan("lineitem.l_discount", li.MustColumn("l_discount"), dev)
	fShip := g.AddTask(task.NewFilterBitmap(kernels.CmpGt, int64(DateQ3), 0, "l_shipdate>1995-03-15"), dev, lship)
	fOrd := g.AddTask(task.NewSemiJoinFilter("l_orderkey in orders"), dev, lkey, g.Out(bOrd, 0))
	andL := g.AddTask(task.NewBitmapAnd(), dev, g.Out(fShip, 0), g.Out(fOrd, 0))

	mLkey, err := task.NewMaterialize(vec.Int32, "l_orderkey")
	if err != nil {
		return nil, err
	}
	mLprice, err := task.NewMaterialize(vec.Int32, "l_extendedprice")
	if err != nil {
		return nil, err
	}
	mLdisc, err := task.NewMaterialize(vec.Int32, "l_discount")
	if err != nil {
		return nil, err
	}
	matLkey := g.AddTask(mLkey, dev, lkey, g.Out(andL, 0))
	matLprice := g.AddTask(mLprice, dev, lprice, g.Out(andL, 0))
	matLdisc := g.AddTask(mLdisc, dev, ldisc, g.Out(andL, 0))

	rev := g.AddTask(task.NewMapMulComplement(100, "price*(100-disc)"), dev, g.Out(matLprice, 0), g.Out(matLdisc, 0))
	groupsHint := or.Rows()/2 + 1
	hAgg := g.AddTask(task.NewHashAgg(kernels.AggSum, groupsHint, "sum(revenue) by l_orderkey"), dev, g.Out(matLkey, 0), g.Out(rev, 0))

	// Pipeline 4: extract the group results.
	ext := g.AddTask(task.NewHashExtract(groupsHint, "extract groups"), dev, g.Out(hAgg, 0))
	g.MarkResult("l_orderkey", g.Out(ext, 0))
	g.MarkResult("revenue", g.Out(ext, 1))
	return g, nil
}

// BuildQ4 plans the order-priority-checking query, the paper's "subquery"
// representative: an EXISTS semi-join from orders into lineitem.
//
//	SELECT o_orderpriority, count(*) FROM orders
//	WHERE o_orderdate >= '1993-07-01' AND o_orderdate < '1993-10-01'
//	  AND EXISTS (SELECT * FROM lineitem WHERE l_orderkey = o_orderkey
//	              AND l_commitdate < l_receiptdate)
//	GROUP BY o_orderpriority
func BuildQ4(d *Dataset, dev device.ID) (*graph.Graph, error) {
	g := graph.New()
	or, li := d.Orders, d.Lineitem

	// Pipeline 1: orderkeys of late lineitems into a key set.
	commit := g.AddScan("lineitem.l_commitdate", li.MustColumn("l_commitdate"), dev)
	receipt := g.AddScan("lineitem.l_receiptdate", li.MustColumn("l_receiptdate"), dev)
	lkey := g.AddScan("lineitem.l_orderkey", li.MustColumn("l_orderkey"), dev)
	fLate := g.AddTask(task.NewFilterColCmp(kernels.CmpLt, "l_commitdate<l_receiptdate"), dev, commit, receipt)
	mLkey, err := task.NewMaterialize(vec.Int32, "l_orderkey")
	if err != nil {
		return nil, err
	}
	matLkey := g.AddTask(mLkey, dev, lkey, g.Out(fLate, 0))
	bLate := g.AddTask(task.NewHashBuildSet(or.Rows(), "build(late orderkeys)"), dev, g.Out(matLkey, 0))

	// Pipeline 2: qualifying orders counted by priority.
	odate := g.AddScan("orders.o_orderdate", or.MustColumn("o_orderdate"), dev)
	okey := g.AddScan("orders.o_orderkey", or.MustColumn("o_orderkey"), dev)
	oprio := g.AddScan("orders.o_orderpriority", or.MustColumn("o_orderpriority"), dev)
	fDate := g.AddTask(task.NewFilterBitmap(kernels.CmpBetween, int64(DateQ4Lo), int64(DateQ4Hi-1), "o_orderdate in Q3/1993"), dev, odate)
	fEx := g.AddTask(task.NewSemiJoinFilter("exists late lineitem"), dev, okey, g.Out(bLate, 0))
	andO := g.AddTask(task.NewBitmapAnd(), dev, g.Out(fDate, 0), g.Out(fEx, 0))
	mPrio, err := task.NewMaterialize(vec.Int32, "o_orderpriority")
	if err != nil {
		return nil, err
	}
	matPrio := g.AddTask(mPrio, dev, oprio, g.Out(andO, 0))
	hCnt := g.AddTask(task.NewHashAggCount(NumPriorities, "count by priority"), dev, g.Out(matPrio, 0))

	// Pipeline 3: extract.
	ext := g.AddTask(task.NewHashExtract(NumPriorities, "extract priorities"), dev, g.Out(hCnt, 0))
	g.MarkResult("o_orderpriority", g.Out(ext, 0))
	g.MarkResult("order_count", g.Out(ext, 1))
	return g, nil
}

// BuildQ1 plans the pricing-summary query (not in the paper's Figure 11
// but exercised by its primitive profiles): one wide lineitem scan with
// group-by aggregation over a tiny group domain.
//
//	SELECT l_rfls, sum(l_quantity), sum(l_extendedprice*(1-l_discount)),
//	       count(*)
//	FROM lineitem WHERE l_shipdate <= '1998-12-01' - 90 days
//	GROUP BY l_rfls
func BuildQ1(d *Dataset, dev device.ID) (*graph.Graph, error) {
	g := graph.New()
	li := d.Lineitem
	ship := g.AddScan("lineitem.l_shipdate", li.MustColumn("l_shipdate"), dev)
	rfls := g.AddScan("lineitem.l_rfls", li.MustColumn("l_rfls"), dev)
	qty := g.AddScan("lineitem.l_quantity", li.MustColumn("l_quantity"), dev)
	price := g.AddScan("lineitem.l_extendedprice", li.MustColumn("l_extendedprice"), dev)
	disc := g.AddScan("lineitem.l_discount", li.MustColumn("l_discount"), dev)

	fShip := g.AddTask(task.NewFilterBitmap(kernels.CmpLe, int64(DateQ1Cutoff), 0, "l_shipdate<=cutoff"), dev, ship)

	mRfls, err := task.NewMaterialize(vec.Int32, "l_rfls")
	if err != nil {
		return nil, err
	}
	mQty, err := task.NewMaterialize(vec.Int32, "l_quantity")
	if err != nil {
		return nil, err
	}
	mPrice, err := task.NewMaterialize(vec.Int32, "l_extendedprice")
	if err != nil {
		return nil, err
	}
	mDisc, err := task.NewMaterialize(vec.Int32, "l_discount")
	if err != nil {
		return nil, err
	}
	matRfls := g.AddTask(mRfls, dev, rfls, g.Out(fShip, 0))
	matQty := g.AddTask(mQty, dev, qty, g.Out(fShip, 0))
	matPrice := g.AddTask(mPrice, dev, price, g.Out(fShip, 0))
	matDisc := g.AddTask(mDisc, dev, disc, g.Out(fShip, 0))

	qty64 := g.AddTask(task.NewMapCast("quantity"), dev, g.Out(matQty, 0))
	rev := g.AddTask(task.NewMapMulComplement(100, "price*(100-disc)"), dev, g.Out(matPrice, 0), g.Out(matDisc, 0))

	hQty := g.AddTask(task.NewHashAgg(kernels.AggSum, NumRfls, "sum(qty) by rfls"), dev, g.Out(matRfls, 0), g.Out(qty64, 0))
	hRev := g.AddTask(task.NewHashAgg(kernels.AggSum, NumRfls, "sum(rev) by rfls"), dev, g.Out(matRfls, 0), g.Out(rev, 0))
	hCnt := g.AddTask(task.NewHashAggCount(NumRfls, "count by rfls"), dev, g.Out(matRfls, 0))

	extQty := g.AddTask(task.NewHashExtract(NumRfls, "extract qty"), dev, g.Out(hQty, 0))
	extRev := g.AddTask(task.NewHashExtract(NumRfls, "extract rev"), dev, g.Out(hRev, 0))
	extCnt := g.AddTask(task.NewHashExtract(NumRfls, "extract cnt"), dev, g.Out(hCnt, 0))
	g.MarkResult("rfls_qty", g.Out(extQty, 0))
	g.MarkResult("sum_qty", g.Out(extQty, 1))
	g.MarkResult("rfls_rev", g.Out(extRev, 0))
	g.MarkResult("sum_rev", g.Out(extRev, 1))
	g.MarkResult("rfls_cnt", g.Out(extCnt, 0))
	g.MarkResult("count", g.Out(extCnt, 1))
	return g, nil
}
