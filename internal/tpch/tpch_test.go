package tpch

import (
	"testing"
)

func smallDataset(t *testing.T) *Dataset {
	t.Helper()
	ds, err := Generate(Config{SF: 0.01, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestGenerateCardinalities(t *testing.T) {
	ds := smallDataset(t)
	if got := ds.Customer.Rows(); got != 1500 {
		t.Errorf("customers = %d, want 1500", got)
	}
	if got := ds.Orders.Rows(); got != 15000 {
		t.Errorf("orders = %d, want 15000", got)
	}
	// 1..7 lineitems per order, expectation 4.
	li := ds.Lineitem.Rows()
	if li < 3*15000 || li > 5*15000 {
		t.Errorf("lineitems = %d, far from 4/order", li)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(Config{SF: 0.01, Seed: 9})
	b, _ := Generate(Config{SF: 0.01, Seed: 9})
	if a.Lineitem.Rows() != b.Lineitem.Rows() {
		t.Fatal("row counts differ across runs")
	}
	ac := a.Lineitem.MustColumn("l_extendedprice").I32()
	bc := b.Lineitem.MustColumn("l_extendedprice").I32()
	for i := range ac {
		if ac[i] != bc[i] {
			t.Fatalf("row %d differs", i)
		}
	}
	c, _ := Generate(Config{SF: 0.01, Seed: 10})
	if c.Lineitem.Rows() == a.Lineitem.Rows() {
		cc := c.Lineitem.MustColumn("l_extendedprice").I32()
		same := true
		for i := range ac {
			if ac[i] != cc[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical data")
		}
	}
}

func TestDomains(t *testing.T) {
	ds := smallDataset(t)
	seg := ds.Customer.MustColumn("c_mktsegment").I32()
	for _, s := range seg {
		if s < 0 || s >= NumSegments {
			t.Fatalf("segment %d out of domain", s)
		}
	}
	prio := ds.Orders.MustColumn("o_orderpriority").I32()
	for _, p := range prio {
		if p < 1 || p > NumPriorities {
			t.Fatalf("priority %d out of domain", p)
		}
	}
	disc := ds.Lineitem.MustColumn("l_discount").I32()
	qty := ds.Lineitem.MustColumn("l_quantity").I32()
	for i := range disc {
		if disc[i] < 0 || disc[i] > 10 {
			t.Fatalf("discount %d out of domain", disc[i])
		}
		if qty[i] < 1 || qty[i] > 50 {
			t.Fatalf("quantity %d out of domain", qty[i])
		}
	}
}

func TestForeignKeysAndDateCorrelations(t *testing.T) {
	ds := smallDataset(t)
	nCust := int32(ds.Customer.Rows())
	custs := ds.Orders.MustColumn("o_custkey").I32()
	for _, c := range custs {
		if c < 1 || c > nCust {
			t.Fatalf("o_custkey %d dangling", c)
		}
	}

	okeys := ds.Orders.MustColumn("o_orderkey").I32()
	odate := ds.Orders.MustColumn("o_orderdate").I32()
	dateOf := make(map[int32]int32, len(okeys))
	for i := range okeys {
		dateOf[okeys[i]] = odate[i]
	}
	lkeys := ds.Lineitem.MustColumn("l_orderkey").I32()
	ship := ds.Lineitem.MustColumn("l_shipdate").I32()
	receipt := ds.Lineitem.MustColumn("l_receiptdate").I32()
	for i := range lkeys {
		od, ok := dateOf[lkeys[i]]
		if !ok {
			t.Fatalf("l_orderkey %d dangling", lkeys[i])
		}
		if ship[i] <= od {
			t.Fatalf("shipdate %d not after orderdate %d", ship[i], od)
		}
		if receipt[i] <= ship[i] {
			t.Fatalf("receiptdate %d not after shipdate %d", receipt[i], ship[i])
		}
	}
}

func TestRatioScaling(t *testing.T) {
	full, _ := Generate(Config{SF: 0.1, Seed: 1})
	scaled, _ := Generate(Config{SF: 0.1, Ratio: 0.1, Seed: 1})
	if scaled.Orders.Rows()*10 != full.Orders.Rows() {
		t.Errorf("ratio scaling: %d vs %d", scaled.Orders.Rows(), full.Orders.Rows())
	}
	// Logical accounting ignores the ratio.
	if full.LogicalRows("orders") != scaled.LogicalRows("orders") {
		t.Error("logical rows must be ratio-independent")
	}
	if scaled.LogicalRows("lineitem") != 600_000 {
		t.Errorf("logical lineitem = %d", scaled.LogicalRows("lineitem"))
	}
	if scaled.LogicalRows("nope") != 0 {
		t.Error("unknown table logical rows")
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Config{SF: 0}); err == nil {
		t.Error("zero SF accepted")
	}
	if _, err := Generate(Config{SF: 0.0001, Ratio: 0.001}); err == nil {
		t.Error("empty dataset accepted")
	}
}

func TestDates(t *testing.T) {
	if Date(1992, 1, 1) != 0 {
		t.Errorf("epoch = %d", Date(1992, 1, 1))
	}
	if Date(1992, 1, 2) != 1 {
		t.Errorf("epoch+1 = %d", Date(1992, 1, 2))
	}
	if Date(1993, 1, 1) != 366 { // 1992 is a leap year
		t.Errorf("1993-01-01 = %d", Date(1993, 1, 1))
	}
	if DateQ6Hi-DateQ6Lo != 365 {
		t.Errorf("Q6 window = %d days", DateQ6Hi-DateQ6Lo)
	}
	if DateQ4Hi <= DateQ4Lo || DateQ3 <= 0 || DateQ1Cutoff <= 0 {
		t.Error("predicate dates out of order")
	}
}

func TestQueryColumnsAndSizes(t *testing.T) {
	for _, q := range []string{"Q1", "Q3", "Q4", "Q6"} {
		cols, err := QueryColumns(q)
		if err != nil || len(cols) == 0 {
			t.Errorf("%s: %v", q, err)
		}
		b, err := QueryInputBytes(q, 100)
		if err != nil || b <= 0 {
			t.Errorf("%s bytes: %v", q, err)
		}
	}
	if _, err := QueryColumns("Q99"); err == nil {
		t.Error("unknown query accepted")
	}

	// Figure 7's headline: Q6's input at SF100 fits an 11 GiB GPU, the
	// full dataset does not.
	q6, _ := QueryInputBytes("Q6", 100)
	if q6 >= 11<<30 {
		t.Errorf("Q6 SF100 input = %d, should fit 11 GiB", q6)
	}
	if DatasetBytes(100) <= 11<<30 {
		t.Errorf("full dataset SF100 = %d, should exceed 11 GiB", DatasetBytes(100))
	}
}

func TestCatalogWrapsTables(t *testing.T) {
	ds := smallDataset(t)
	cat := ds.Catalog()
	names := cat.Names()
	if len(names) != 3 {
		t.Errorf("catalog names = %v", names)
	}
}

// TestReferenceSanity cross-checks the reference implementations against
// basic invariants.
func TestReferenceSanity(t *testing.T) {
	ds := smallDataset(t)

	if rev := RefQ6(ds); rev <= 0 {
		t.Errorf("Q6 revenue = %d", rev)
	}

	q3 := RefQ3(ds)
	if len(q3) == 0 {
		t.Fatal("Q3 returned no groups")
	}
	for k, v := range q3 {
		if v <= 0 {
			t.Fatalf("Q3 group %d revenue %d", k, v)
		}
	}

	q4 := RefQ4(ds)
	var total int64
	for p, c := range q4 {
		if p < 1 || p > NumPriorities || c <= 0 {
			t.Fatalf("Q4 group %d count %d", p, c)
		}
		total += c
	}
	if total <= 0 || total > int64(ds.Orders.Rows()) {
		t.Errorf("Q4 total = %d", total)
	}

	q1 := RefQ1(ds)
	var rows int64
	for _, g := range q1 {
		rows += g.Count
		if g.SumQty <= 0 || g.SumRev <= 0 {
			t.Error("Q1 group with non-positive sums")
		}
	}
	if rows > int64(ds.Lineitem.Rows()) {
		t.Errorf("Q1 counted %d rows of %d", rows, ds.Lineitem.Rows())
	}
}
