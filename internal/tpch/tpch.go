// Package tpch generates the TPC-H data the paper evaluates on and builds
// the primitive-graph plans for the queries it measures (Q1, Q3, Q4, Q6).
//
// The generator is a deterministic, in-process substitute for dbgen. It
// produces exactly the columns the evaluated queries touch, with the
// TPC-H-specified domains, correlations (ship/commit/receipt dates derive
// from the order date) and foreign-key structure (1-7 lineitems per
// order), so operator selectivities and join fan-outs match the benchmark.
//
// Because the paper runs at scale factors 100-140 (hundreds of gigabytes),
// Config.Ratio scales the *generated* row counts down for laptop runs
// while keeping the nominal scale factor for logical-size accounting: the
// capacity analyses (Figure 7, the HeavyDB Q3 abort) use LogicalRows /
// logical bytes, so they reproduce the paper's behaviour regardless of how
// much data is physically generated.
package tpch

import (
	"fmt"
	"math"

	"github.com/adamant-db/adamant/internal/storage"
	"github.com/adamant-db/adamant/internal/vec"
)

// Base cardinalities at scale factor 1.
const (
	CustomersPerSF = 150_000
	OrdersPerSF    = 1_500_000
	// LineitemsPerSF is the expected lineitem count (4 per order).
	LineitemsPerSF = 6_000_000
)

// Market segments (c_mktsegment domain).
const (
	SegAutomobile int32 = iota
	SegBuilding
	SegFurniture
	SegHousehold
	SegMachinery
	NumSegments
)

// Order priorities (o_orderpriority domain, 1-URGENT .. 5-LOW).
const NumPriorities = 5

// NumRfls is the return-flag/line-status domain size for Q1 (A/F, N/F,
// N/O, R/F plus two rare combinations).
const NumRfls = 6

// Config parameterizes generation.
type Config struct {
	// SF is the nominal TPC-H scale factor (the paper uses 100-140).
	SF float64
	// Ratio scales generated row counts down from the nominal SF. 1
	// generates full size; 1/100 generates SF/100-sized tables while
	// logical accounting stays at SF. Defaults to 1.
	Ratio float64
	// Seed makes generation reproducible. The zero seed is valid.
	Seed uint64
}

func (c Config) ratio() float64 {
	if c.Ratio <= 0 || c.Ratio > 1 {
		return 1
	}
	return c.Ratio
}

// Dataset holds the generated tables and the logical (unscaled) sizes.
type Dataset struct {
	Config   Config
	Customer *storage.Table
	Orders   *storage.Table
	Lineitem *storage.Table
}

// rng is splitmix64: deterministic, seekable per partition, stdlib-free.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// intn returns a uniform value in [0, n).
func (r *rng) intn(n int) int {
	return int(r.next() % uint64(n))
}

// rangeInt returns a uniform value in [lo, hi].
func (r *rng) rangeInt(lo, hi int) int {
	return lo + r.intn(hi-lo+1)
}

// Generate builds the dataset.
func Generate(cfg Config) (*Dataset, error) {
	if cfg.SF <= 0 {
		return nil, fmt.Errorf("tpch: scale factor must be positive, got %v", cfg.SF)
	}
	scale := cfg.SF * cfg.ratio()
	nCust := int(math.Round(CustomersPerSF * scale))
	nOrd := int(math.Round(OrdersPerSF * scale))
	if nCust < 1 || nOrd < 1 {
		return nil, fmt.Errorf("tpch: SF %v with ratio %v produces an empty dataset", cfg.SF, cfg.ratio())
	}

	r := &rng{state: cfg.Seed ^ 0xADA3A27} // distinct stream per dataset

	// customer
	cCustkey := make([]int32, nCust)
	cMktseg := make([]int32, nCust)
	for i := range cCustkey {
		cCustkey[i] = int32(i + 1)
		cMktseg[i] = int32(r.intn(int(NumSegments)))
	}

	// orders + lineitem (generated together so line dates derive from
	// their order's date).
	oOrderkey := make([]int32, nOrd)
	oCustkey := make([]int32, nOrd)
	oOrderdate := make([]int32, nOrd)
	oPriority := make([]int32, nOrd)

	estLines := nOrd * 4
	lOrderkey := make([]int32, 0, estLines)
	lQuantity := make([]int32, 0, estLines)
	lExtPrice := make([]int32, 0, estLines)
	lDiscount := make([]int32, 0, estLines)
	lShipdate := make([]int32, 0, estLines)
	lCommitdate := make([]int32, 0, estLines)
	lReceiptdate := make([]int32, 0, estLines)
	lRfls := make([]int32, 0, estLines)

	// Orders span 1992-01-01 .. 1998-08-02 per the TPC-H spec.
	maxOrderDate := int(Date(1998, 8, 2))
	for i := 0; i < nOrd; i++ {
		oOrderkey[i] = int32(i + 1)
		oCustkey[i] = int32(r.rangeInt(1, nCust))
		odate := int32(r.intn(maxOrderDate + 1))
		oOrderdate[i] = odate
		oPriority[i] = int32(r.rangeInt(1, NumPriorities))

		lines := r.rangeInt(1, 7)
		for l := 0; l < lines; l++ {
			ship := odate + int32(r.rangeInt(1, 121))
			commit := odate + int32(r.rangeInt(30, 90))
			receipt := ship + int32(r.rangeInt(1, 30))
			lOrderkey = append(lOrderkey, oOrderkey[i])
			lQuantity = append(lQuantity, int32(r.rangeInt(1, 50)))
			// Price in cents: 90,000 .. 10,500,000 (roughly the
			// spec's extended price domain).
			lExtPrice = append(lExtPrice, int32(r.rangeInt(90_000, 10_500_000)))
			lDiscount = append(lDiscount, int32(r.rangeInt(0, 10)))
			lShipdate = append(lShipdate, ship)
			lCommitdate = append(lCommitdate, commit)
			lReceiptdate = append(lReceiptdate, receipt)
			lRfls = append(lRfls, int32(r.intn(NumRfls)))
		}
	}

	customer := storage.NewTable("customer", nCust)
	customer.MustAddColumn("c_custkey", vec.FromInt32(cCustkey))
	customer.MustAddColumn("c_mktsegment", vec.FromInt32(cMktseg))

	orders := storage.NewTable("orders", nOrd)
	orders.MustAddColumn("o_orderkey", vec.FromInt32(oOrderkey))
	orders.MustAddColumn("o_custkey", vec.FromInt32(oCustkey))
	orders.MustAddColumn("o_orderdate", vec.FromInt32(oOrderdate))
	orders.MustAddColumn("o_orderpriority", vec.FromInt32(oPriority))

	lineitem := storage.NewTable("lineitem", len(lOrderkey))
	lineitem.MustAddColumn("l_orderkey", vec.FromInt32(lOrderkey))
	lineitem.MustAddColumn("l_quantity", vec.FromInt32(lQuantity))
	lineitem.MustAddColumn("l_extendedprice", vec.FromInt32(lExtPrice))
	lineitem.MustAddColumn("l_discount", vec.FromInt32(lDiscount))
	lineitem.MustAddColumn("l_shipdate", vec.FromInt32(lShipdate))
	lineitem.MustAddColumn("l_commitdate", vec.FromInt32(lCommitdate))
	lineitem.MustAddColumn("l_receiptdate", vec.FromInt32(lReceiptdate))
	lineitem.MustAddColumn("l_rfls", vec.FromInt32(lRfls))

	return &Dataset{Config: cfg, Customer: customer, Orders: orders, Lineitem: lineitem}, nil
}

// Catalog wraps the dataset's tables.
func (d *Dataset) Catalog() *storage.Catalog {
	c := storage.NewCatalog()
	c.Add(d.Customer)
	c.Add(d.Orders)
	c.Add(d.Lineitem)
	return c
}

// LogicalRows reports the unscaled cardinality of a table at the nominal
// scale factor, for capacity analyses.
func (d *Dataset) LogicalRows(table string) int64 {
	switch table {
	case "customer":
		return int64(math.Round(CustomersPerSF * d.Config.SF))
	case "orders":
		return int64(math.Round(OrdersPerSF * d.Config.SF))
	case "lineitem":
		return int64(math.Round(LineitemsPerSF * d.Config.SF))
	default:
		return 0
	}
}

// QueryColumns lists the columns each evaluated query scans, as
// table/column pairs, for the input-size analysis of Figure 7.
func QueryColumns(q string) ([][2]string, error) {
	switch q {
	case "Q1":
		return [][2]string{
			{"lineitem", "l_shipdate"}, {"lineitem", "l_rfls"}, {"lineitem", "l_quantity"},
			{"lineitem", "l_extendedprice"}, {"lineitem", "l_discount"},
		}, nil
	case "Q3":
		return [][2]string{
			{"customer", "c_mktsegment"}, {"customer", "c_custkey"},
			{"orders", "o_orderdate"}, {"orders", "o_custkey"}, {"orders", "o_orderkey"},
			{"lineitem", "l_orderkey"}, {"lineitem", "l_shipdate"},
			{"lineitem", "l_extendedprice"}, {"lineitem", "l_discount"},
		}, nil
	case "Q4":
		return [][2]string{
			{"lineitem", "l_commitdate"}, {"lineitem", "l_receiptdate"}, {"lineitem", "l_orderkey"},
			{"orders", "o_orderdate"}, {"orders", "o_orderkey"}, {"orders", "o_orderpriority"},
		}, nil
	case "Q6":
		return [][2]string{
			{"lineitem", "l_shipdate"}, {"lineitem", "l_discount"},
			{"lineitem", "l_quantity"}, {"lineitem", "l_extendedprice"},
		}, nil
	default:
		return nil, fmt.Errorf("tpch: unknown query %q", q)
	}
}

// QueryInputBytes reports the logical (unscaled) bytes a query's scanned
// columns occupy at SF, assuming 4-byte integer columns.
func QueryInputBytes(q string, sf float64) (int64, error) {
	cols, err := QueryColumns(q)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, tc := range cols {
		var rows int64
		switch tc[0] {
		case "customer":
			rows = int64(math.Round(CustomersPerSF * sf))
		case "orders":
			rows = int64(math.Round(OrdersPerSF * sf))
		case "lineitem":
			rows = int64(math.Round(LineitemsPerSF * sf))
		}
		total += rows * 4
	}
	return total, nil
}

// DatasetBytes reports the logical size of the full generated schema at SF
// (all columns the generator materializes).
func DatasetBytes(sf float64) int64 {
	cust := int64(math.Round(CustomersPerSF*sf)) * 4 * 2
	ord := int64(math.Round(OrdersPerSF*sf)) * 4 * 4
	li := int64(math.Round(LineitemsPerSF*sf)) * 4 * 8
	return cust + ord + li
}
