package tpch

import (
	"testing"

	"github.com/adamant-db/adamant/internal/device"
)

func TestBuildQueryShapes(t *testing.T) {
	ds := smallDataset(t)
	dev := device.ID(0)

	cases := map[string]struct {
		pipelines int
		results   int
	}{
		"Q1": {pipelines: 4, results: 6}, // scan pipeline + 3 extract pipelines
		"Q3": {pipelines: 4, results: 2}, // customer, orders, lineitem, extract
		"Q4": {pipelines: 3, results: 2}, // lineitem, orders, extract
		"Q6": {pipelines: 1, results: 1},
	}
	for q, want := range cases {
		g, err := BuildQuery(q, ds, dev)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: validate: %v", q, err)
		}
		ps, err := g.BuildPipelines()
		if err != nil {
			t.Fatalf("%s: pipelines: %v", q, err)
		}
		if len(ps) != want.pipelines {
			t.Errorf("%s: %d pipelines, want %d", q, len(ps), want.pipelines)
		}
		if len(g.Results()) != want.results {
			t.Errorf("%s: %d results, want %d", q, len(g.Results()), want.results)
		}
	}

	if _, err := BuildQuery("Q99", ds, dev); err == nil {
		t.Error("unknown query accepted")
	}
}

func TestQ3PipelineDependencies(t *testing.T) {
	ds := smallDataset(t)
	g, err := BuildQ3(ds, device.ID(0))
	if err != nil {
		t.Fatal(err)
	}
	ps, err := g.BuildPipelines()
	if err != nil {
		t.Fatal(err)
	}
	// orders depends on customers, lineitem on orders, extract on lineitem.
	deps := map[int][]int{1: {0}, 2: {1}, 3: {2}}
	for idx, want := range deps {
		got := ps[idx].DependsOn
		if len(got) != len(want) || got[0] != want[0] {
			t.Errorf("pipeline %d deps = %v, want %v", idx, got, want)
		}
	}
	// The lineitem pipeline streams the most rows.
	if ps[2].ScanRows(g) != ds.Lineitem.Rows() {
		t.Errorf("pipeline 2 rows = %d", ps[2].ScanRows(g))
	}
	// The extract pipeline has no streamed inputs.
	if len(ps[3].Scans) != 0 {
		t.Errorf("extract pipeline scans = %d", len(ps[3].Scans))
	}
}
