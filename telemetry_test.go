package adamant_test

import (
	"encoding/json"
	"fmt"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	adamant "github.com/adamant-db/adamant"
	"github.com/adamant-db/adamant/internal/telemetry"
)

// telemetryPlan builds the small filter+sum plan the telemetry tests run.
func telemetryPlan(eng *adamant.Engine, dev adamant.DeviceID) *adamant.Plan {
	vals := make([]int32, 4096)
	for i := range vals {
		vals[i] = int32(i % 100)
	}
	plan := eng.NewPlan().On(dev)
	col := plan.ScanInt32("v", vals)
	kept := plan.Materialize(col, plan.Filter(col, adamant.Lt, 30))
	plan.Return("sum", plan.SumInt64(plan.CastInt64(kept)))
	return plan
}

// TestTelemetryEndToEnd arms the telemetry layer, runs queries, and checks
// the Prometheus exposition carries the labeled families, renders
// deterministically, and balances with the event sink.
func TestTelemetryEndToEnd(t *testing.T) {
	eng := adamant.NewEngine().WithTelemetry(adamant.TelemetryConfig{})
	if !eng.Telemetry() {
		t.Fatal("WithTelemetry should arm the layer")
	}
	gpu, err := eng.Plug(adamant.RTX2080Ti, adamant.CUDA)
	if err != nil {
		t.Fatal(err)
	}
	const n = 3
	for i := 0; i < n; i++ {
		if _, err := eng.Execute(telemetryPlan(eng, gpu), adamant.ExecOptions{Model: adamant.Pipelined, ChunkElems: 1024}); err != nil {
			t.Fatal(err)
		}
	}

	var b1, b2 strings.Builder
	if err := eng.WriteProm(&b1); err != nil {
		t.Fatal(err)
	}
	if err := eng.WriteProm(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Error("WriteProm is not deterministic across scrapes")
	}
	prom := b1.String()
	for _, want := range []string{
		`adamant_queries_total{device="GeForce RTX 2080 Ti/cuda",model="pipelined",driver="CUDA"} 3`,
		`adamant_events_total{type="query_finish"} 3`,
		`adamant_events_total{type="query_start"} 3`,
		"# TYPE adamant_query_elapsed_ns histogram",
		"adamant_query_elapsed_ns_count",
		`adamant_device_busy_ns{device="GeForce RTX 2080 Ti/cuda",engine="compute"}`,
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("exposition missing %q:\n%s", want, prom)
		}
	}

	totals := eng.EventTotals()
	if totals["query_start"] != n || totals["query_finish"] != n {
		t.Errorf("event totals should balance at %d: %v", n, totals)
	}
	var events strings.Builder
	if err := eng.WriteEvents(&events); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(events.String(), `"query_start"`); got != n {
		t.Errorf("JSONL has %d query_start events, want %d:\n%s", got, n, events.String())
	}
	var util strings.Builder
	eng.WriteUtilization(&util)
	if !strings.Contains(util.String(), "GeForce RTX 2080 Ti/cuda/compute") {
		t.Errorf("utilization heat strip missing compute row:\n%s", util.String())
	}
}

// TestTelemetryRaceBalance runs concurrent queries against one telemetry-
// armed engine sharing a single TraceRecorder, scraping metrics in
// parallel, and requires the event ledger to balance: every admitted query
// contributes exactly one query_start and one query_finish, and the
// Prometheus counter and MetricsSnapshot agree on the total. Run under
// -race this doubles as the telemetry data-race gate.
func TestTelemetryRaceBalance(t *testing.T) {
	eng := adamant.NewEngine(adamant.WithMaxConcurrent(4)).WithTelemetry(adamant.TelemetryConfig{})
	gpu, err := eng.Plug(adamant.RTX2080Ti, adamant.CUDA)
	if err != nil {
		t.Fatal(err)
	}
	shared := adamant.NewTraceRecorder()

	const n = 12
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := eng.Execute(telemetryPlan(eng, gpu), adamant.ExecOptions{
				Model: adamant.Chunked, ChunkElems: 512, Recorder: shared,
			})
			errs <- err
		}()
	}
	// Concurrent scrapes while queries run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			var b strings.Builder
			_ = eng.WriteProm(&b)
			_ = eng.WriteEvents(&b)
			eng.WriteUtilization(&b)
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	totals := eng.EventTotals()
	if totals["query_start"] != n || totals["query_finish"] != n {
		t.Errorf("start/finish should balance at %d: %v", n, totals)
	}

	var prom strings.Builder
	if err := eng.WriteProm(&prom); err != nil {
		t.Fatal(err)
	}
	re := regexp.MustCompile(`(?m)^adamant_queries_total{[^}]*} (\d+)$`)
	var promTotal int
	for _, m := range re.FindAllStringSubmatch(prom.String(), -1) {
		var v int
		fmt.Sscanf(m[1], "%d", &v)
		promTotal += v
	}
	if promTotal != n {
		t.Errorf("adamant_queries_total sums to %d, want %d:\n%s", promTotal, n, prom.String())
	}

	var snapQueries int
	if _, err := fmt.Sscanf(eng.MetricsSnapshot(), "queries %d", &snapQueries); err != nil {
		t.Fatalf("parsing MetricsSnapshot: %v\n%s", err, eng.MetricsSnapshot())
	}
	if snapQueries != n {
		t.Errorf("MetricsSnapshot queries = %d, want %d", snapQueries, n)
	}

	if got := len(eng.FlightDigests()); got != n {
		t.Errorf("flight recorder has %d digests, want %d", got, n)
	}
	if shared.Len() == 0 {
		t.Error("shared recorder captured no spans")
	}
}

// TestMetricsSnapshotSortedDevices pins the per-device rows to name order
// regardless of plug order.
func TestMetricsSnapshotSortedDevices(t *testing.T) {
	eng := adamant.NewEngine()
	// Plug in reverse name order: "Intel ..." then "GeForce ...".
	if _, err := eng.Plug(adamant.CoreI78700, adamant.OpenMP); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Plug(adamant.RTX2080Ti, adamant.CUDA); err != nil {
		t.Fatal(err)
	}
	snap := eng.MetricsSnapshot()
	gi := strings.Index(snap, "device GeForce")
	ii := strings.Index(snap, "device Intel")
	if gi < 0 || ii < 0 {
		t.Fatalf("snapshot missing device rows:\n%s", snap)
	}
	if gi > ii {
		t.Errorf("device rows not sorted by name (GeForce at %d after Intel at %d):\n%s", gi, ii, snap)
	}
}

// chromeEvent mirrors the trace_event fields the exporter emits.
type chromeEvent struct {
	Name  string   `json:"name"`
	Phase string   `json:"ph"`
	PID   int      `json:"pid"`
	TID   int      `json:"tid"`
	TS    *float64 `json:"ts"`
	Dur   *float64 `json:"dur"`
	Args  map[string]any
}

// TestChromeTraceRoundTrip exports a traced query to Chrome trace_event
// JSON and re-parses it: every event must carry the required fields,
// timestamps are non-negative and monotone per track, and every device
// track maps to a plugged device.
func TestChromeTraceRoundTrip(t *testing.T) {
	eng := adamant.NewEngine().WithTelemetry(adamant.TelemetryConfig{})
	gpu, err := eng.Plug(adamant.RTX2080Ti, adamant.CUDA)
	if err != nil {
		t.Fatal(err)
	}
	rec := adamant.NewTraceRecorder()
	if _, err := eng.Execute(telemetryPlan(eng, gpu), adamant.ExecOptions{
		Model: adamant.FourPhasePipelined, ChunkElems: 1024, Recorder: rec,
	}); err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	if err := rec.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	var export struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &export); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	events := export.TraceEvents
	if len(events) == 0 {
		t.Fatal("empty chrome trace")
	}

	trackNames := map[int]string{}
	lastTS := map[int]float64{}
	for i, ev := range events {
		if ev.Name == "" || ev.Phase == "" {
			t.Fatalf("event %d missing name/ph: %+v", i, ev)
		}
		if ev.Phase == "M" {
			if name, ok := ev.Args["name"].(string); ok {
				trackNames[ev.TID] = name
			}
			continue
		}
		if ev.TS == nil {
			t.Fatalf("event %d (%s) missing ts", i, ev.Name)
		}
		if *ev.TS < 0 {
			t.Errorf("event %d (%s) has negative ts %f", i, ev.Name, *ev.TS)
		}
		if ev.Dur != nil && *ev.Dur < 0 {
			t.Errorf("event %d (%s) has negative dur %f", i, ev.Name, *ev.Dur)
		}
		if *ev.TS < lastTS[ev.TID] {
			t.Errorf("event %d (%s) regresses on track %d: ts %f < %f", i, ev.Name, ev.TID, *ev.TS, lastTS[ev.TID])
		}
		lastTS[ev.TID] = *ev.TS
	}

	if trackNames[0] != "executor" {
		t.Errorf("track 0 should be the executor track: %v", trackNames)
	}
	deviceTracks := 0
	for tid, name := range trackNames {
		if tid == 0 {
			continue
		}
		deviceTracks++
		if !strings.HasPrefix(name, "GeForce RTX 2080 Ti/cuda/") {
			t.Errorf("track %d (%q) does not map to the plugged device", tid, name)
		}
	}
	if deviceTracks < 2 {
		t.Errorf("expected copy and compute device tracks, got %v", trackNames)
	}
}

// TestTelemetryDisabledAllocs guards the telemetry-off hot path: every
// telemetry component is a nil-receiver no-op, so an engine that never
// called WithTelemetry pays zero allocations at the emission seams.
func TestTelemetryDisabledAllocs(t *testing.T) {
	var (
		sink   *telemetry.EventSink
		util   *telemetry.UtilTracker
		flight *telemetry.FlightRecorder
	)
	if n := testing.AllocsPerRun(1000, func() {
		sink.Emit(telemetry.Event{Type: telemetry.EventRetry, Query: 7})
		if sink.Enabled() || sink.Len() != 0 || sink.Total(telemetry.EventRetry) != 0 {
			t.Fatal("nil sink must observe nothing")
		}
		util.Sample("dev", "copy", 10, 5)
		flight.Record(telemetry.QueryDigest{Query: 7}, nil)
		if flight.Len() != 0 {
			t.Fatal("nil flight recorder must retain nothing")
		}
	}); n != 0 {
		t.Fatalf("disabled telemetry: %.1f allocs/op on the hot path, want 0", n)
	}

	eng := adamant.NewEngine()
	if eng.Telemetry() {
		t.Fatal("telemetry should default off")
	}
	var b strings.Builder
	if err := eng.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "disabled") {
		t.Errorf("telemetry-off exposition should say disabled: %q", b.String())
	}
}

// TestTraceIdenticalWithTelemetry is the non-perturbation invariant: the
// same plan on a telemetry-armed engine produces byte-identical trace
// summaries, Chrome exports, and engine metrics as on a bare engine.
func TestTraceIdenticalWithTelemetry(t *testing.T) {
	render := func(armed bool) (summary, chrome, snapshot string) {
		eng := adamant.NewEngine()
		if armed {
			eng.WithTelemetry(adamant.TelemetryConfig{SlowThreshold: time.Nanosecond})
		}
		gpu, err := eng.Plug(adamant.RTX2080Ti, adamant.CUDA)
		if err != nil {
			t.Fatal(err)
		}
		rec := adamant.NewTraceRecorder()
		for i := 0; i < 2; i++ {
			if _, err := eng.Execute(telemetryPlan(eng, gpu), adamant.ExecOptions{
				Model: adamant.Pipelined, ChunkElems: 1024, Recorder: rec,
			}); err != nil {
				t.Fatal(err)
			}
		}
		var s, c strings.Builder
		rec.WriteSummary(&s)
		if err := rec.WriteChrome(&c); err != nil {
			t.Fatal(err)
		}
		return s.String(), c.String(), eng.MetricsSnapshot()
	}
	s0, c0, m0 := render(false)
	s1, c1, m1 := render(true)
	if s0 != s1 {
		t.Errorf("telemetry perturbs the trace summary:\n--- off ---\n%s\n--- on ---\n%s", s0, s1)
	}
	if c0 != c1 {
		t.Error("telemetry perturbs the Chrome export")
	}
	if m0 != m1 {
		t.Errorf("telemetry perturbs engine metrics:\n--- off ---\n%s\n--- on ---\n%s", m0, m1)
	}
}

// TestFlightRecorderRetention drives one slow and one errored query and
// checks both come back from the flight recorder with full span traces.
func TestFlightRecorderRetention(t *testing.T) {
	// Any nonzero latency crosses a 1ns slow threshold.
	eng := adamant.NewEngine().WithTelemetry(adamant.TelemetryConfig{SlowThreshold: time.Nanosecond})
	gpu, err := eng.Plug(adamant.RTX2080Ti, adamant.CUDA)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Execute(telemetryPlan(eng, gpu), adamant.ExecOptions{Model: adamant.Chunked, ChunkElems: 1024}); err != nil {
		t.Fatal(err)
	}
	digests := eng.FlightDigests()
	if len(digests) != 1 {
		t.Fatalf("got %d digests, want 1", len(digests))
	}
	slow := digests[0]
	if slow.Retained != "slow" {
		t.Errorf("retention = %q, want slow", slow.Retained)
	}
	if len(slow.Spans) == 0 {
		t.Error("slow query should retain its full span trace")
	}
	if slow.ElapsedNS <= 0 || slow.Chunks <= 0 {
		t.Errorf("digest missing stats: %+v", slow)
	}

	// Permanent OOM with no adaptive chunking: the query errors.
	plan, err := adamant.ParseFaultPlan("seed=1,oom=1")
	if err != nil {
		t.Fatal(err)
	}
	feng := adamant.NewEngine(adamant.WithFaultPlan(plan)).WithTelemetry(adamant.TelemetryConfig{})
	fgpu, err := feng.Plug(adamant.RTX2080Ti, adamant.CUDA)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := feng.Execute(telemetryPlan(feng, fgpu), adamant.ExecOptions{Model: adamant.Chunked, ChunkElems: 1024}); err == nil {
		t.Fatal("oom=1 query should fail")
	}
	fd := feng.FlightDigests()
	if len(fd) != 1 {
		t.Fatalf("got %d digests, want 1", len(fd))
	}
	bad := fd[0]
	if bad.Retained != "error" || bad.Err == "" {
		t.Errorf("errored query digest: %+v", bad)
	}
	totals := feng.EventTotals()
	if totals["query_start"] != 1 || totals["query_finish"] != 1 {
		t.Errorf("errored query should still balance start/finish: %v", totals)
	}
}

// TestTelemetryAutoPlanFamilies pins the adamant_autoplan_* exposition: an
// auto-planned query bumps the per-(device, model) counter and publishes
// the catalog size gauge.
func TestTelemetryAutoPlanFamilies(t *testing.T) {
	eng := adamant.NewEngine(adamant.WithAutoPlan()).WithTelemetry(adamant.TelemetryConfig{})
	gpu, err := eng.Plug(adamant.RTX2080Ti, adamant.CUDA)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Execute(telemetryPlan(eng, gpu), adamant.ExecOptions{}); err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	if err := eng.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	prom := b.String()
	if !regexp.MustCompile(`(?m)^adamant_autoplan_total\{device="[^"]+",model="[^"]+"\} 1$`).MatchString(prom) {
		t.Errorf("no adamant_autoplan_total sample:\n%s", prom)
	}
	entries := regexp.MustCompile(`(?m)^adamant_autoplan_catalog_entries (\d+)$`).FindStringSubmatch(prom)
	if entries == nil || entries[1] == "0" {
		t.Errorf("catalog-entries gauge missing or zero: %v", entries)
	}
	// adamant_autoplan_replans_total only materializes once a re-plan
	// fires; a drift-free plan correctly leaves it out of the exposition.
}
