package adamant

import (
	"context"

	"github.com/adamant-db/adamant/internal/sql"
	"github.com/adamant-db/adamant/internal/storage"
	"github.com/adamant-db/adamant/internal/vec"
)

// Table is a named collection of equal-length host columns that SQL queries
// run against.
type Table struct {
	inner *storage.Table
}

// NewTable creates a table expecting the given row count.
func NewTable(name string, rows int) *Table {
	return &Table{inner: storage.NewTable(name, rows)}
}

// AddInt32 attaches an int32 column (the dialect's column type).
func (t *Table) AddInt32(name string, values []int32) error {
	return t.inner.AddColumn(name, vec.FromInt32(values))
}

// Name returns the table name.
func (t *Table) Name() string { return t.inner.Name }

// Rows returns the table cardinality.
func (t *Table) Rows() int { return t.inner.Rows() }

// Catalog names the tables a query can reference.
type Catalog struct {
	inner *storage.Catalog
}

// NewCatalog builds a catalog over the given tables.
func NewCatalog(tables ...*Table) *Catalog {
	c := storage.NewCatalog()
	for _, t := range tables {
		c.Add(t.inner)
	}
	return &Catalog{inner: c}
}

// QueryOptions configures one SQL execution.
type QueryOptions struct {
	ExecOptions
	// GroupsHint estimates the distinct group count for GROUP BY sizing
	// (zero: a quarter of the table's rows).
	GroupsHint int
}

// Query parses, plans and executes a SQL query against the catalog on the
// given device.
//
// The dialect is the analytical subset the paper evaluates: single-table
// SELECT with conjunctive WHERE predicates (comparisons, BETWEEN,
// column-vs-column, DATE 'yyyy-mm-dd' literals, parenthesized OR groups),
// IN and NOT IN subquery semi/anti-joins (nestable — the relational form
// of TPC-H Q3/Q4's joins), SUM/MIN/MAX aggregates over columns, a*b, and
// a*(k-b) expressions, COUNT(*), and single-column GROUP BY, with ORDER BY
// <result column> [DESC] and LIMIT applied host-side after retrieval. The
// front-end lowers queries onto the same primitives as the plan-builder
// API.
func (e *Engine) Query(cat *Catalog, dev DeviceID, query string, opts QueryOptions) (*Result, error) {
	return e.QueryContext(context.Background(), cat, dev, query, opts)
}

// QueryContext is Query with cancellation and admission control: the SQL
// query goes through the same session scheduler as plan execution, and the
// context is honoured while queued and at every chunk boundary while
// running.
func (e *Engine) QueryContext(ctx context.Context, cat *Catalog, dev DeviceID, query string, opts QueryOptions) (*Result, error) {
	ast, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	g, err := sql.Plan(ast, sql.PlanConfig{
		Catalog:    cat.inner,
		Device:     dev,
		GroupsHint: opts.GroupsHint,
	})
	if err != nil {
		return nil, err
	}
	res, err := e.runGraph(ctx, g, e.execOptions(opts.ExecOptions, e.queryDeadline(opts.ExecOptions)), opts.Priority)
	if err != nil {
		return nil, err
	}
	if err := sql.PostProcess(res, ast); err != nil {
		return nil, err
	}
	return newResult(res), nil
}
