package adamant

import (
	"context"
	"fmt"

	"github.com/adamant-db/adamant/internal/bufpool"
	"github.com/adamant-db/adamant/internal/exec"
	"github.com/adamant-db/adamant/internal/fault"
	"github.com/adamant-db/adamant/internal/graph"
	"github.com/adamant-db/adamant/internal/hub"
	"github.com/adamant-db/adamant/internal/session"
	"github.com/adamant-db/adamant/internal/shard"
	"github.com/adamant-db/adamant/internal/telemetry"
	"github.com/adamant-db/adamant/internal/trace"
	"github.com/adamant-db/adamant/internal/vclock"
)

// ShardLossMode selects what a sharded engine does with a partition it
// cannot recover (see WithShardLoss).
type ShardLossMode = shard.LossMode

// Shard-loss modes.
const (
	// ShardLossFail fails the whole query with a *ShardLostError (the
	// default): a lost partition is an error, never a silently smaller
	// answer.
	ShardLossFail = shard.LossFail
	// ShardLossPartial completes the query without the lost partitions
	// and lists them in Stats.PartialShards — explicitly flagged
	// degradation for workloads that prefer a partial answer over none.
	ShardLossPartial = shard.LossPartial
)

// ShardHedgePolicy configures hedged retries for straggling partitions
// (see WithShardHedging). The zero value of each field takes the
// documented default.
type ShardHedgePolicy = shard.HedgePolicy

// ShardStat summarizes one partition of a sharded execution: which shard
// produced it, its virtual and wall time, and which robustness paths
// (hedge, failover, loss) fired along the way.
type ShardStat = exec.ShardStat

// ErrShardLost is the sentinel every unrecoverable shard loss wraps under
// the ShardLossFail mode. Match with errors.Is.
var ErrShardLost = shard.ErrShardLost

// ShardLostError is the typed failure carrying which partition was lost
// and on which shard. Match with errors.As.
type ShardLostError = shard.LostError

// EventShardFailover marks a partition re-dispatched to a healthy shard
// after its assigned shard died; EventShardLost marks a partition given up
// on; EventHedge marks a hedged duplicate attempt. In shard-level events
// the From/To fields carry shard indexes, not device IDs.
const (
	EventShardFailover = exec.EventShardFailover
	EventShardLost     = exec.EventShardLost
	EventHedge         = exec.EventHedge
)

// WithShards partitions every eligible query across n independent runtime
// shards. Each shard is a full engine stack — its own devices (Plug
// replicates every plugged device onto every shard), virtual clocks,
// admission scheduler, fault-injection stream and buffer pool — and the
// coordinator scatters filters and partial aggregates to the shards,
// gathering exact merged results: a sharded query returns bit-for-bit the
// unsharded answer, a typed error, or (under ShardLossPartial) an
// explicitly flagged partial answer. Queries whose plans the scatter
// planner cannot prove exact (position lists, sorted outputs, partitioned
// hash builds) transparently run unsharded on shard 0.
//
// n <= 1 leaves sharding off. WithShards composes with the engine's
// robustness options — deadlines apply per shard on its own clocks, fault
// plans are replicated with per-shard seeds so shards fault independently,
// and in-shard retry/failover/degradation work unchanged — but not with
// WithAutoPlan (the auto planner's calibration and catalog are
// per-runtime; combining them fails at Plug/Execute).
func WithShards(n int) EngineOption {
	return func(c *engineConfig) { c.shards = n }
}

// WithShardLoss selects the shard-loss degradation mode (default
// ShardLossFail). Only meaningful together with WithShards.
func WithShardLoss(mode ShardLossMode) EngineOption {
	return func(c *engineConfig) { c.shardLoss = mode }
}

// WithShardFailovers bounds how many times one partition may be
// re-dispatched onto a healthy peer after its shard dies. Zero (the
// default) allows shards-1 failovers — enough to reach every peer once;
// a negative n disables failover entirely, so a shard death immediately
// takes the shard-loss path. Only meaningful together with WithShards.
func WithShardFailovers(n int) EngineOption {
	return func(c *engineConfig) { c.shardFail = n }
}

// WithShardHedging arms hedged retries for straggling partitions: when a
// partition's wall time exceeds Factor × the Quantile of its completed
// peers, a duplicate attempt launches on an idle healthy shard and the
// first result wins (the loser is cancelled through its context). Only
// meaningful together with WithShards.
func WithShardHedging(p ShardHedgePolicy) EngineOption {
	return func(c *engineConfig) {
		p.Enabled = true
		c.shardHedge = p
	}
}

// ShardCount reports how many runtime shards the engine scatters over
// (1 when sharding is off).
func (e *Engine) ShardCount() int {
	if e.coord == nil {
		return 1
	}
	return e.coord.Shards()
}

// DeadShards lists the shard indexes currently marked dead, ascending.
// A dead shard stays dead for the engine's lifetime: its partitions are
// re-assigned to healthy peers at dispatch.
func (e *Engine) DeadShards() []int {
	if e.coord == nil {
		return nil
	}
	return e.coord.Dead()
}

// DrainShards blocks until every in-flight shard attempt — including
// cancelled hedge losers abandoned by first-result-wins races — has
// exited. Harnesses drain before asserting on memory or pool baselines.
func (e *Engine) DrainShards() {
	if e.coord != nil {
		e.coord.Drain()
	}
}

// buildShards assembles the per-shard engine stacks and the coordinator
// at engine construction. Shard 0 reuses the engine's own runtime,
// scheduler and pool — the unsharded fallback path and partition 0 run on
// the same stack — while shards 1..n-1 get fresh ones. Fault plans are
// copied per shard with the seed offset by the shard index, so every
// shard draws an independent deterministic fault stream.
func (e *Engine) buildShards(cfg *engineConfig) {
	n := cfg.shards
	e.shardCtxs = make([]shardCtx, n)
	e.shardPlans = make([]*fault.Plan, n)
	e.shardCtxs[0] = shardCtx{rt: e.rt, sched: e.sched, pool: e.pool}
	e.shardPlans[0] = e.faultPlan
	for s := 1; s < n; s++ {
		rt := hub.NewRuntime()
		sched := session.NewScheduler(cfg.sess)
		var pool *bufpool.Manager
		if cfg.poolCap > 0 {
			pool = bufpool.New(bufpool.Config{
				Capacity:   cfg.poolCap,
				Policy:     cfg.poolPolicy,
				Cost:       e.metrics,
				Device:     rt.Device,
				Accountant: sched,
			})
			sched.SetPoolReclaimer(pool)
		}
		e.shardCtxs[s] = shardCtx{rt: rt, sched: sched, pool: pool}
		if e.faultPlan != nil {
			p := *e.faultPlan
			p.Seed += uint64(s)
			e.shardPlans[s] = &p
		}
	}
	shards := make([]shard.Shard, n)
	for s := range shards {
		sc := e.shardCtxs[s]
		shards[s] = shard.Shard{
			Name:  fmt.Sprintf("shard%d", s),
			RT:    sc.rt,
			Sched: sc.sched,
			Pool:  sc.pool,
		}
	}
	var rewrite func(*graph.Graph) *graph.Graph
	if cfg.fuse {
		rewrite = graph.Fuse
	}
	coord, err := shard.New(shard.Config{
		Shards:       shards,
		Hedge:        cfg.shardHedge,
		Loss:         cfg.shardLoss,
		MaxFailovers: cfg.shardFail,
		Rewrite:      rewrite,
	})
	if err != nil {
		e.confErr = err
		return
	}
	e.coord = coord
}

// runSharded scatters one query over the shard fleet, mirroring the
// unsharded path's telemetry bookkeeping. ok=false means the scatter
// planner declined the plan and nothing ran — the caller executes
// unsharded on shard 0.
func (e *Engine) runSharded(ctx context.Context, g *graph.Graph, opts exec.Options, priority int, shape string) (res *exec.Result, ok bool, err error) {
	if _, accept := graph.Scatter(g); !accept {
		return nil, false, nil
	}
	var (
		tel             = e.tele
		qid             uint64
		devName, driver string
		startVT         vclock.Time
		mark            int
	)
	if tel != nil {
		qid = tel.nextQuery.Add(1)
		opts.QueryID = qid
		opts.Events = tel.sink
		if demand, derr := exec.EstimateDemand(g, opts); derr == nil {
			devName, driver = e.primaryDevice(demand)
		}
		if opts.Recorder == nil {
			opts.Recorder = trace.NewRecorder()
		}
		mark = opts.Recorder.Len()
		startVT = e.vtNow()
		tel.sink.Emit(telemetry.Event{
			Type: telemetry.EventQueryStart, Query: qid,
			VT: int64(startVT), Device: devName, Model: opts.Model.String(),
		})
	}
	res, scattered, runErr := e.coord.Run(ctx, g, opts, priority)
	if !scattered {
		// Scatter is deterministic, so the precheck should have caught
		// this; fall back to the unsharded path regardless.
		return nil, false, nil
	}
	if res != nil {
		var failovers int64
		for _, s := range res.Stats.Shards {
			if s.FailedOver {
				failovers++
			}
		}
		e.metrics.ObserveQuery(trace.QueryStats{
			Elapsed:      res.Stats.Elapsed,
			KernelTime:   res.Stats.KernelTime,
			TransferTime: res.Stats.TransferTime,
			OverheadTime: res.Stats.OverheadTime,
			H2DBytes:     res.Stats.H2DBytes,
			D2HBytes:     res.Stats.D2HBytes,
			Launches:     res.Stats.Launches,
			Chunks:       res.Stats.Chunks,
			Pipelines:    res.Stats.Pipelines,
			Retries:      res.Stats.Retries,
			Failovers:    failovers,
			Err:          runErr != nil,
		})
	}
	if tel != nil {
		e.observeShardTelemetry(qid, res, opts.Model.String())
		e.observeQueryTelemetry(qid, devName, driver, opts.Model.String(), shape, opts.Tenant,
			startVT, res, runErr, opts.Recorder.Spans()[mark:])
	}
	return res, true, runErr
}
