package adamant

import (
	"fmt"

	"github.com/adamant-db/adamant/internal/device"
	"github.com/adamant-db/adamant/internal/devmem"
	"github.com/adamant-db/adamant/internal/simhw"
	"github.com/adamant-db/adamant/internal/vclock"
)

// CustomSpec describes a user-defined simulated co-processor, for
// experimenting with hypothetical hardware (a small embedded GPU, a future
// accelerator) without touching the runtime. Zero fields take reasonable
// GPU-class defaults.
type CustomSpec struct {
	// Name labels the device.
	Name string
	// HostResident makes the device share the host address space (a
	// CPU-class device: transfers degenerate to registrations).
	HostResident bool
	// MemoryBytes is the device memory capacity; operator-at-a-time
	// execution fails once a query's resident set exceeds it.
	MemoryBytes int64
	// StreamGBps, RandomGBps and AtomicMops set the compute throughput
	// model (sequential bandwidth, gather/scatter bandwidth, contended
	// atomics in millions/s).
	StreamGBps float64
	RandomGBps float64
	AtomicMops float64
	// TransferGBps and PinnedGBps set the interconnect (pageable and
	// pinned peak rates).
	TransferGBps float64
	PinnedGBps   float64
	// SDK selects the software-stack profile layered on the hardware.
	SDK SDK
}

// PlugCustom registers a device built from a custom hardware description
// and returns its ID.
func (e *Engine) PlugCustom(cs CustomSpec) (DeviceID, error) {
	if cs.Name == "" {
		cs.Name = "custom-device"
	}
	def := func(v, d float64) float64 {
		if v <= 0 {
			return d
		}
		return v
	}
	if cs.MemoryBytes <= 0 {
		cs.MemoryBytes = 4 * simhw.GiB
	}
	class := simhw.ClassGPU
	if cs.HostResident {
		class = simhw.ClassCPU
	}
	pageable := simhw.LinkCurve{PeakGBps: def(cs.TransferGBps, 6), Latency: 12 * vclock.Microsecond}
	pinned := simhw.LinkCurve{PeakGBps: def(cs.PinnedGBps, def(cs.TransferGBps, 6)*2), Latency: 9 * vclock.Microsecond}
	spec := &simhw.Spec{
		Name:         cs.Name,
		Class:        class,
		MemoryBytes:  cs.MemoryBytes,
		Cores:        1024,
		StreamGBps:   def(cs.StreamGBps, 300),
		RandomGBps:   def(cs.RandomGBps, 60),
		AtomicMops:   def(cs.AtomicMops, 500),
		KernelLaunch: 7 * vclock.Microsecond,
		Links: simhw.Links{
			H2DPageable: pageable,
			H2DPinned:   pinned,
			D2HPageable: pageable,
			D2HPinned:   pinned,
		},
	}

	var profile *simhw.SDKProfile
	var format devmem.Format
	switch cs.SDK {
	case CUDA:
		if cs.HostResident {
			return 0, fmt.Errorf("adamant: CUDA cannot drive host-resident device %s", cs.Name)
		}
		profile, format = &simhw.CUDAProfile, devmem.FormatCUDA
	case OpenCL:
		if cs.HostResident {
			profile = &simhw.OpenCLCPUProfile
		} else {
			profile = &simhw.OpenCLGPUProfile
		}
		format = devmem.FormatOpenCL
	case OpenMP:
		if !cs.HostResident {
			return 0, fmt.Errorf("adamant: OpenMP cannot drive discrete device %s", cs.Name)
		}
		profile, format = &simhw.OpenMPProfile, devmem.FormatRaw
	default:
		return 0, fmt.Errorf("adamant: unknown SDK %d", int(cs.SDK))
	}

	return e.register(func() device.Device {
		return device.NewSim(device.SimConfig{
			Name:   cs.Name + "/" + profile.Name,
			Spec:   spec,
			SDK:    profile,
			Format: format,
		})
	})
}
