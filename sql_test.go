package adamant_test

import (
	"testing"

	adamant "github.com/adamant-db/adamant"
)

func salesCatalog(t *testing.T) *adamant.Catalog {
	t.Helper()
	sales := adamant.NewTable("sales", 6)
	regions := adamant.NewTable("regions", 3)
	for col, vals := range map[string][]int32{
		"amount": {10, 20, 30, 40, 50, 60},
		"region": {1, 2, 1, 3, 2, 1},
		"year":   {1992, 1993, 1992, 1994, 1992, 1995},
	} {
		if err := sales.AddInt32(col, vals); err != nil {
			t.Fatal(err)
		}
	}
	if err := regions.AddInt32("r_id", []int32{1, 2, 9}); err != nil {
		t.Fatal(err)
	}
	if err := regions.AddInt32("r_active", []int32{1, 0, 1}); err != nil {
		t.Fatal(err)
	}
	return adamant.NewCatalog(sales, regions)
}

func TestQueryAggregates(t *testing.T) {
	eng, gpu := engineWithGPU(t)
	cat := salesCatalog(t)

	res, err := eng.Query(cat, gpu, `
		SELECT SUM(amount) AS total, MIN(amount) AS lo, MAX(amount) AS hi, COUNT(*) AS n
		FROM sales WHERE year = 1992`, adamant.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Int64("total")[0]; got != 10+30+50 {
		t.Errorf("total = %d", got)
	}
	if res.Int64("lo")[0] != 10 || res.Int64("hi")[0] != 50 || res.Int64("n")[0] != 3 {
		t.Errorf("lo/hi/n = %d/%d/%d", res.Int64("lo")[0], res.Int64("hi")[0], res.Int64("n")[0])
	}
}

func TestQueryGroupByWithSubquery(t *testing.T) {
	eng, gpu := engineWithGPU(t)
	cat := salesCatalog(t)

	res, err := eng.Query(cat, gpu, `
		SELECT region, SUM(amount) AS total, COUNT(*) AS n
		FROM sales
		WHERE region IN (SELECT r_id FROM regions WHERE r_active = 1)
		GROUP BY region`, adamant.QueryOptions{GroupsHint: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Active regions: 1 and 9; sales only reference 1.
	if res.Len("region") != 1 {
		t.Fatalf("groups = %d, want 1", res.Len("region"))
	}
	if res.Int64("region")[0] != 1 || res.Int64("total")[0] != 10+30+60 || res.Int64("n")[0] != 3 {
		t.Errorf("group = (%d, %d, %d)", res.Int64("region")[0], res.Int64("total")[0], res.Int64("n")[0])
	}
}

func TestQueryErrors(t *testing.T) {
	eng, gpu := engineWithGPU(t)
	cat := salesCatalog(t)

	if _, err := eng.Query(cat, gpu, `SELECT FROM`, adamant.QueryOptions{}); err == nil {
		t.Error("parse error not surfaced")
	}
	if _, err := eng.Query(cat, gpu, `SELECT missing FROM sales`, adamant.QueryOptions{}); err == nil {
		t.Error("plan error not surfaced")
	}
}

func TestQueryModels(t *testing.T) {
	eng, gpu := engineWithGPU(t)

	n := 50000
	amounts := make([]int32, n)
	years := make([]int32, n)
	var want int64
	for i := range amounts {
		amounts[i] = int32(i % 100)
		years[i] = int32(1990 + i%10)
		if years[i] >= 1995 {
			want += int64(amounts[i])
		}
	}
	big := adamant.NewTable("big", n)
	if err := big.AddInt32("amount", amounts); err != nil {
		t.Fatal(err)
	}
	if err := big.AddInt32("year", years); err != nil {
		t.Fatal(err)
	}
	cat := adamant.NewCatalog(big)

	for _, model := range []adamant.Model{adamant.OperatorAtATime, adamant.Chunked, adamant.FourPhasePipelined} {
		res, err := eng.Query(cat, gpu, `SELECT SUM(amount) AS s FROM big WHERE year >= 1995`,
			adamant.QueryOptions{ExecOptions: adamant.ExecOptions{Model: model, ChunkElems: 4096}})
		if err != nil {
			t.Fatalf("%v: %v", model, err)
		}
		if got := res.Int64("s")[0]; got != want {
			t.Errorf("%v: sum = %d, want %d", model, got, want)
		}
	}
}
