package adamant

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickModelDriverEquivalence is the zero-fault half of the differential
// property: for random seed-deterministic plans, every execution model on
// every driver must produce bit-identical results to the OperatorAtATime
// baseline on the CUDA device, with memory back at baseline afterwards.
func TestQuickModelDriverEquivalence(t *testing.T) {
	maxCount := 12
	if testing.Short() {
		maxCount = 3
	}
	prop := func(seed int64) bool {
		refEng := harnessEngine(t, harnessDrivers[0], nil)
		refPlan := buildHarnessPlan(refEng, seed)
		refRes, err := refEng.Execute(refPlan, ExecOptions{Model: OperatorAtATime, ChunkElems: 192})
		if err != nil {
			t.Logf("seed %d: baseline failed: %v", seed, err)
			return false
		}
		ok := true
		for _, drv := range harnessDrivers {
			for _, model := range harnessModels {
				eng := harnessEngine(t, drv, nil)
				res, err := eng.Execute(buildHarnessPlan(eng, seed),
					ExecOptions{Model: model, ChunkElems: 192})
				label := drv.name + "/" + model.String()
				if err != nil {
					t.Logf("seed %d %s: %v", seed, label, err)
					ok = false
					continue
				}
				if !resultsEqual(refRes, res) {
					t.Logf("seed %d %s: result diverged from baseline", seed, label)
					ok = false
				}
				checkMemBaseline(t, eng, label)
			}
		}
		return ok
	}
	cfg := &quick.Config{
		MaxCount: maxCount,
		Rand:     rand.New(rand.NewSource(20230419)), // deterministic seeds
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// resultsEqual is a non-failing variant of sameResults for use inside a
// quick property, where divergence should surface as the failing seed.
func resultsEqual(want, got *Result) bool {
	wc, gc := want.Columns(), got.Columns()
	if len(wc) != len(gc) {
		return false
	}
	for i := range wc {
		if wc[i] != gc[i] {
			return false
		}
	}
	for _, name := range wc {
		wv, _ := want.column(name)
		gv, _ := got.column(name)
		if !vecEqual(wv, gv) {
			return false
		}
	}
	return true
}
