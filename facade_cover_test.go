package adamant_test

import (
	"testing"

	adamant "github.com/adamant-db/adamant"
	"github.com/adamant-db/adamant/internal/driver/simomp"
	"github.com/adamant-db/adamant/internal/simhw"
)

// TestPlanGroupOperators covers the grouped-aggregation plan methods:
// GroupSum and GroupCount over one key column, extracted and aligned.
func TestPlanGroupOperators(t *testing.T) {
	eng, gpu := engineWithGPU(t)

	keys := []int32{1, 2, 1, 3, 2, 1}
	vals := []int32{10, 20, 30, 40, 50, 60}
	wantSum := map[int64]int64{1: 100, 2: 70, 3: 40}
	wantCnt := map[int64]int64{1: 3, 2: 2, 3: 1}

	plan := eng.NewPlan().On(gpu)
	k := plan.ScanInt32("k", keys)
	v := plan.ScanInt32("v", vals)
	sums := plan.GroupSum(k, plan.CastInt64(v), 8)
	gk, gs := plan.GroupResults(sums, 8)
	plan.Return("key", gk)
	plan.Return("sum", gs)

	k2 := plan.ScanInt32("k2", keys)
	counts := plan.GroupCount(k2, 8)
	ck, cc := plan.GroupResults(counts, 8)
	plan.Return("ckey", ck)
	plan.Return("count", cc)

	res, err := eng.Execute(plan, adamant.ExecOptions{Model: adamant.Chunked, ChunkElems: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i, key := range res.Int64("key") {
		if wantSum[key] != res.Int64("sum")[i] {
			t.Errorf("sum[%d] = %d, want %d", key, res.Int64("sum")[i], wantSum[key])
		}
	}
	for i, key := range res.Int64("ckey") {
		if wantCnt[key] != res.Int64("count")[i] {
			t.Errorf("count[%d] = %d, want %d", key, res.Int64("count")[i], wantCnt[key])
		}
	}
}

// TestPlanAntiJoinAndPositions covers NotExistsIn, AndNot, And,
// FilterPositions and PrefixSum through the public API.
func TestPlanAntiJoinAndPositions(t *testing.T) {
	eng, gpu := engineWithGPU(t)

	// Anti-join: keys absent from the set.
	plan := eng.NewPlan().On(gpu)
	setKeys := plan.ScanInt32("set", []int32{2, 4})
	set := plan.BuildKeySet(setKeys, 2)
	probe := plan.ScanInt32("probe", []int32{1, 2, 3, 4, 5})
	missing := plan.NotExistsIn(probe, set)
	small := plan.Filter(probe, adamant.Le, 3)
	both := plan.And(missing, small) // {1, 3}
	onlyMissing := plan.AndNot(missing, small)
	plan.Return("both", plan.CountBits(both))
	plan.Return("only_missing_large", plan.CountBits(onlyMissing))

	res, err := eng.Execute(plan, adamant.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Int64("both")[0]; got != 2 {
		t.Errorf("both = %d, want 2 ({1,3})", got)
	}
	if got := res.Int64("only_missing_large")[0]; got != 1 {
		t.Errorf("only_missing_large = %d, want 1 ({5})", got)
	}

	// Position-list filtering plus a prefix sum over gathered values.
	plan2 := eng.NewPlan().On(gpu)
	col := plan2.ScanInt32("c", []int32{5, 1, 7, 2, 9})
	pos := plan2.FilterPositions(col, adamant.Ge, 5, 1.0)
	kept := plan2.Gather(col, pos) // 5, 7, 9
	plan2.Return("scan", plan2.PrefixSum(kept))

	res2, err := eng.Execute(plan2, adamant.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got := res2.Int32("scan")
	want := []int32{0, 5, 12}
	if len(got) != len(want) {
		t.Fatalf("scan = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("scan[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

// TestPlugDeviceAndRuntime covers the raw device plug-in entry points.
func TestPlugDeviceAndRuntime(t *testing.T) {
	eng := adamant.NewEngine()
	id, err := eng.PlugDevice(simomp.New(&simhw.CoreI78700, nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(eng.Runtime().Devices()) != 1 {
		t.Error("runtime does not expose the plugged device")
	}

	plan := eng.NewPlan().On(id)
	c := plan.ScanInt32("c", []int32{1, 2, 3})
	plan.Return("sum", plan.SumInt64(plan.CastInt64(c)))
	res, err := eng.Execute(plan, adamant.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Int64("sum")[0] != 6 {
		t.Error("plugged device computed wrong sum")
	}
}

// TestCatalogAccessors covers the SQL catalog wrappers.
func TestCatalogAccessors(t *testing.T) {
	tb := adamant.NewTable("t", 2)
	if err := tb.AddInt32("a", []int32{1, 2}); err != nil {
		t.Fatal(err)
	}
	if tb.Name() != "t" || tb.Rows() != 2 {
		t.Errorf("table accessors: %s/%d", tb.Name(), tb.Rows())
	}
	if err := tb.AddInt32("bad", []int32{1}); err == nil {
		t.Error("length mismatch accepted")
	}
}
