package adamant_test

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"os"

	"github.com/adamant-db/adamant/internal/cost"
	"github.com/adamant-db/adamant/internal/device"
	"github.com/adamant-db/adamant/internal/driver/simcuda"
	"github.com/adamant-db/adamant/internal/driver/simomp"
	"github.com/adamant-db/adamant/internal/exec"
	"github.com/adamant-db/adamant/internal/hub"
	"github.com/adamant-db/adamant/internal/simhw"
	"github.com/adamant-db/adamant/internal/tpch"
	"github.com/adamant-db/adamant/internal/trace"
)

// goldenAutoTrace runs one query end-to-end in auto mode on a two-device
// rig — deterministic calibration, catalog-driven plan, execution with the
// decision's notes and re-plan hook — and returns the rendered trace, the
// raw spans, and the decision itself.
func goldenAutoTrace(t *testing.T, query string, replan exec.ReplanFunc) (string, []trace.Span, *cost.Decision) {
	t.Helper()
	ds, err := tpch.Generate(tpch.Config{SF: 1, Ratio: 1.0 / 4096, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	rt := hub.NewRuntime()
	var ids []device.ID
	for _, dev := range []device.Device{
		simcuda.New(&simhw.RTX2080Ti, nil),
		simomp.New(&simhw.CoreI78700, nil),
	} {
		id, err := rt.Register(dev)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	cat := cost.New()
	if err := cost.Calibrate(rt, ids, cat); err != nil {
		t.Fatal(err)
	}
	g, err := tpch.BuildQuery(query, ds, ids[0])
	if err != nil {
		t.Fatal(err)
	}
	dec, err := cost.NewPlanner(cat).Plan(g, rt, cost.PlanOptions{Candidates: ids, MaxChunk: 512})
	if err != nil {
		t.Fatal(err)
	}
	pipelines, err := g.BuildPipelines()
	if err != nil {
		t.Fatal(err)
	}
	if replan == nil {
		replan = dec.Replan()
	}
	rec := trace.NewRecorder()
	res, err := exec.Run(rt, g, exec.Options{
		Model: dec.Model, ChunkElems: dec.ChunkElems,
		PlanNotes: dec.Notes, Replan: replan, Recorder: rec,
	})
	if err != nil {
		t.Fatalf("%s auto: %v", query, err)
	}
	var b strings.Builder
	exec.WriteAnalyze(&b, g, pipelines, res.Stats, rec.Spans())
	b.WriteString("\n")
	trace.WriteSummary(&b, rec.Spans())
	return b.String(), rec.Spans(), dec
}

var replanLabel = regexp.MustCompile(`^chunk (\d+)->(\d+): `)

// checkReplanSpans enforces the re-plan span invariant: every replan span
// names a from->to chunk transition, and the transition actually changes
// the chunk — a replan that restarts into the identical configuration is a
// wasted attempt and must never be recorded.
func checkReplanSpans(t *testing.T, label string, spans []trace.Span) int {
	t.Helper()
	var n int
	for _, s := range spans {
		if s.Kind != trace.KindReplan {
			continue
		}
		n++
		m := replanLabel.FindStringSubmatch(s.Label)
		if m == nil {
			t.Errorf("%s: replan span label %q does not name a chunk transition", label, s.Label)
			continue
		}
		if m[1] == m[2] {
			t.Errorf("%s: replan span %q restarts into the same chunk", label, s.Label)
		}
	}
	return n
}

// TestGoldenTraceAuto pins the full auto-mode trace of Q6 and Q3 on a
// GPU+CPU rig: calibration feeds the catalog, the planner's decision spans
// land in the trace as autoplan annotations, and the whole rendering —
// placement, model, chunk, spans, summary — is byte-stable across runs.
func TestGoldenTraceAuto(t *testing.T) {
	for _, query := range []string{"Q3", "Q6"} {
		name := query + "-auto-plan"
		t.Run(name, func(t *testing.T) {
			got, spans, dec := goldenAutoTrace(t, query, nil)
			if again, _, _ := goldenAutoTrace(t, query, nil); again != got {
				t.Fatalf("auto trace of %s not deterministic:\n%s", query, diffLines(again, got))
			}

			// Every planner note surfaces as exactly one autoplan span, and
			// the summary renders them.
			var autoplan int
			for _, s := range spans {
				if s.Kind == trace.KindAutoPlan {
					autoplan++
				}
			}
			if autoplan != len(dec.Notes) {
				t.Errorf("%d autoplan spans for %d decision notes", autoplan, len(dec.Notes))
			}
			if !strings.Contains(got, "autoplan:") {
				t.Error("rendered trace has no autoplan: lines")
			}
			checkReplanSpans(t, name, spans)

			path := filepath.Join("testdata", "traces", name+".txt")
			if *update {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run: go test -run TestGoldenTraceAuto -update .): %v", err)
			}
			if got != string(want) {
				t.Errorf("golden mismatch for %s (re-bless with -update if intended):\n%s",
					path, diffLines(got, string(want)))
			}
		})
	}
}

// TestReplanSpanInvariant forces the hook to fire so the invariant check
// has a real replan span to bite on: the span must appear, name the
// transition, and appear at most once (the one-replan bound).
func TestReplanSpanInvariant(t *testing.T) {
	forced := func(o exec.ReplanObservation) (int, bool) {
		if o.ChunkElems == 64 {
			return 0, false
		}
		return 64, true
	}
	_, spans, _ := goldenAutoTrace(t, "Q3", forced)
	n := checkReplanSpans(t, "forced", spans)
	if n == 0 {
		t.Fatal("forced hook produced no replan span")
	}
	if n > 1 {
		t.Fatalf("%d replan spans; the one-replan bound broke", n)
	}
}
