package adamant_test

import (
	"testing"

	adamant "github.com/adamant-db/adamant"
)

// TestSortedGroupSum exercises the SORT_AGG path of Table I end to end:
// boundary indicator -> PREFIX_SUM (breaker) -> SORT_AGG over sorted keys.
func TestSortedGroupSum(t *testing.T) {
	eng, gpu := engineWithGPU(t)

	// Sorted keys with irregular group sizes.
	var keys []int32
	var values []int32
	want := map[int32]int64{}
	for g := int32(0); g < 50; g++ {
		for i := int32(0); i <= g%7; i++ {
			keys = append(keys, g*3)
			values = append(values, g+i)
			want[g*3] += int64(g + i)
		}
	}

	plan := eng.NewPlan().On(gpu)

	// Pipeline 1: group indexes from the sorted key column.
	k1 := plan.ScanInt32("keys", keys)
	pxsum := plan.GroupIndexes(k1)

	// Pipeline 2: segmented aggregation.
	k2 := plan.ScanInt32("keys2", keys)
	v := plan.ScanInt32("values", values)
	gk, ga := plan.SortedGroupSum(k2, plan.CastInt64(v), pxsum, len(want))
	plan.Return("group", gk)
	plan.Return("sum", ga)

	res, err := eng.Execute(plan, adamant.ExecOptions{Model: adamant.OperatorAtATime})
	if err != nil {
		t.Fatal(err)
	}
	groups := res.Int32("group")
	sums := res.Int64("sum")
	if len(groups) != len(want) {
		t.Fatalf("got %d groups, want %d", len(groups), len(want))
	}
	for i, g := range groups {
		if want[g] != sums[i] {
			t.Errorf("group %d sum = %d, want %d", g, sums[i], want[g])
		}
	}
}
