// Benchmarks regenerating the paper's evaluation (§V): one benchmark per
// table/figure plus ablations of the design choices DESIGN.md calls out.
//
// Each benchmark drives the real ADAMANT stack. Wall time measures the
// simulator's own cost; the paper's quantity — simulated device time — is
// reported as the custom metric "vms/op" (virtual milliseconds per
// operation).
//
// Run everything with:
//
//	go test -bench=. -benchmem .
package adamant_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	adamant "github.com/adamant-db/adamant"
	"github.com/adamant-db/adamant/internal/core"
	"github.com/adamant-db/adamant/internal/device"
	"github.com/adamant-db/adamant/internal/devmem"
	"github.com/adamant-db/adamant/internal/driver/simcuda"
	"github.com/adamant-db/adamant/internal/driver/simomp"
	"github.com/adamant-db/adamant/internal/driver/simopencl"
	"github.com/adamant-db/adamant/internal/exec"
	"github.com/adamant-db/adamant/internal/heavysim"
	"github.com/adamant-db/adamant/internal/hub"
	"github.com/adamant-db/adamant/internal/kernels"
	"github.com/adamant-db/adamant/internal/session"
	"github.com/adamant-db/adamant/internal/simhw"
	"github.com/adamant-db/adamant/internal/tpch"
	"github.com/adamant-db/adamant/internal/trace"
	"github.com/adamant-db/adamant/internal/vclock"
	"github.com/adamant-db/adamant/internal/vec"
)

// benchRatio scales the paper's scale factors down for bench runs; the
// chunk size scales along with it to keep chunk counts faithful.
const benchRatio = 1.0 / 512

func benchChunk() int {
	c := int(float64(int64(1)<<25) * benchRatio)
	return (c + 63) &^ 63
}

var benchDataset = map[float64]*tpch.Dataset{}

func dataset(b *testing.B, sf float64) *tpch.Dataset {
	b.Helper()
	if ds, ok := benchDataset[sf]; ok {
		return ds
	}
	ds, err := tpch.Generate(tpch.Config{SF: sf, Ratio: benchRatio, Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	benchDataset[sf] = ds
	return ds
}

func reportVirtual(b *testing.B, total vclock.Duration) {
	b.Helper()
	b.ReportMetric(total.Seconds()*1e3/float64(b.N), "vms/op")
}

// BenchmarkFig3Transfer regenerates Figure 3's bandwidth points: one 64 MiB
// H2D transfer per iteration, per SDK and memory mode.
func BenchmarkFig3Transfer(b *testing.B) {
	const bytes = 64 << 20
	for _, cfg := range []struct {
		name   string
		build  func() device.Device
		pinned bool
	}{
		{"CUDA/pageable", func() device.Device { return simcuda.New(&simhw.RTX2080Ti, nil) }, false},
		{"CUDA/pinned", func() device.Device { return simcuda.New(&simhw.RTX2080Ti, nil) }, true},
		{"OpenCL/pageable", func() device.Device { return simopencl.NewGPU(&simhw.RTX2080Ti, nil) }, false},
		{"OpenCL/pinned", func() device.Device { return simopencl.NewGPU(&simhw.RTX2080Ti, nil) }, true},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			d := cfg.build()
			if err := d.Initialize(); err != nil {
				b.Fatal(err)
			}
			host := vec.New(vec.Int32, bytes/4)
			var buf devmem.BufferID
			var err error
			if cfg.pinned {
				buf, _, err = d.AddPinnedMemory(vec.Int32, bytes/4, 0)
			} else {
				buf, _, err = d.PrepareMemory(vec.Int32, bytes/4, 0)
			}
			if err != nil {
				b.Fatal(err)
			}
			start := d.CopyEngine().Avail()
			b.SetBytes(bytes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := d.PlaceDataInto(buf, 0, host, 0); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			reportVirtual(b, d.CopyEngine().Avail().Sub(start))
		})
	}
}

// BenchmarkFig5MapReduce regenerates Figure 5: the MAP and AGG_BLOCK
// primitives over resident data, per driver.
func BenchmarkFig5MapReduce(b *testing.B) {
	const n = 1 << 22
	drivers := []struct {
		name  string
		build func() device.Device
	}{
		{"cuda", func() device.Device { return simcuda.New(&simhw.RTX2080Ti, nil) }},
		{"opencl-gpu", func() device.Device { return simopencl.NewGPU(&simhw.RTX2080Ti, nil) }},
		{"opencl-cpu", func() device.Device { return simopencl.NewCPU(&simhw.CoreI78700, nil) }},
		{"openmp", func() device.Device { return simomp.New(&simhw.CoreI78700, nil) }},
	}
	for _, drv := range drivers {
		for _, kernel := range []string{"map_mul_i32_i64", "agg_block_i32"} {
			b.Run(drv.name+"/"+kernel, func(b *testing.B) {
				d := drv.build()
				if err := d.Initialize(); err != nil {
					b.Fatal(err)
				}
				in := vec.New(vec.Int32, n)
				a, _, err := d.PlaceData(in, 0)
				if err != nil {
					b.Fatal(err)
				}
				var args []devmem.BufferID
				var params []int64
				if kernel == "map_mul_i32_i64" {
					b2, _, _ := d.PlaceData(in, 0)
					out, _, _ := d.PrepareMemory(vec.Int64, n, 0)
					args = []devmem.BufferID{a, b2, out}
				} else {
					out, _, _ := d.PrepareMemory(vec.Int64, 1, 0)
					args = []devmem.BufferID{a, out}
					params = []int64{int64(kernels.AggSum)}
				}
				start := d.ComputeEngine().Avail()
				b.SetBytes(4 * n)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := d.Execute(device.ExecRequest{Kernel: kernel, Args: args, Params: params}, 0); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				reportVirtual(b, d.ComputeEngine().Avail().Sub(start))
			})
		}
	}
}

// BenchmarkFig7Footprint regenerates Figure 7 (right): Q6 under
// operator-at-a-time with the footprint trace enabled.
func BenchmarkFig7Footprint(b *testing.B) {
	ds := dataset(b, 10)
	rt := hub.NewRuntime()
	dev, err := rt.Register(simcuda.New(&simhw.RTX2080Ti, nil))
	if err != nil {
		b.Fatal(err)
	}
	var virtual vclock.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := tpch.BuildQ6(ds, dev)
		if err != nil {
			b.Fatal(err)
		}
		res, err := core.Run(rt, g, core.Options{Model: core.OperatorAtATime, Trace: true})
		if err != nil {
			b.Fatal(err)
		}
		virtual += res.Stats.Elapsed
	}
	b.StopTimer()
	reportVirtual(b, virtual)
}

// BenchmarkFig9Primitives regenerates Figure 9's primitive profiles on the
// CUDA and OpenCL GPU drivers.
func BenchmarkFig9Primitives(b *testing.B) {
	const n = 1 << 20
	drivers := []struct {
		name  string
		build func() device.Device
	}{
		{"cuda", func() device.Device { return simcuda.New(&simhw.RTX2080Ti, nil) }},
		{"opencl", func() device.Device { return simopencl.NewGPU(&simhw.RTX2080Ti, nil) }},
	}
	for _, drv := range drivers {
		b.Run(drv.name, func(b *testing.B) {
			d := drv.build()
			if err := d.Initialize(); err != nil {
				b.Fatal(err)
			}
			keysHost := vec.New(vec.Int32, n)
			for i := 0; i < n; i++ {
				keysHost.I32()[i] = int32(i)
			}
			keys, _, _ := d.PlaceData(keysHost, 0)
			vals, _, _ := d.PlaceData(vec.New(vec.Int64, n), 0)
			bm, _, _ := d.PrepareMemory(vec.Bits, n, 0)
			mat, _, _ := d.PrepareMemory(vec.Int32, n, 0)
			count, _, _ := d.PrepareMemory(vec.Int64, 1, 0)
			table, _, _ := d.PrepareMemory(vec.Int64, kernels.HashTableLen(n), 0)

			steps := []struct {
				name   string
				req    device.ExecRequest
				reinit bool
			}{
				{"filter_bitmap", device.ExecRequest{Kernel: "filter_bitmap_i32", Args: []devmem.BufferID{keys, bm}, Params: []int64{int64(kernels.CmpLt), n / 2, 0}}, false},
				{"materialize", device.ExecRequest{Kernel: "materialize_bitmap_i32", Args: []devmem.BufferID{keys, bm, mat, count}}, false},
				{"hash_build", device.ExecRequest{Kernel: "hash_build_pk_i32", Args: []devmem.BufferID{keys, table}, Params: []int64{0}}, true},
				{"hash_probe", device.ExecRequest{Kernel: "hash_probe_exists_i32", Args: []devmem.BufferID{keys, table, bm}}, false},
				{"hash_agg", device.ExecRequest{Kernel: "hash_agg_i32_i64", Args: []devmem.BufferID{keys, vals, table}, Params: []int64{int64(kernels.AggSum), 1 << 16}}, true},
			}
			for _, step := range steps {
				b.Run(step.name, func(b *testing.B) {
					start := d.ComputeEngine().Avail()
					b.SetBytes(4 * n)
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if step.reinit {
							b.StopTimer()
							if _, err := d.Execute(device.ExecRequest{Kernel: "hash_table_init", Args: []devmem.BufferID{table}}, 0); err != nil {
								b.Fatal(err)
							}
							b.StartTimer()
						}
						if _, err := d.Execute(step.req, 0); err != nil {
							b.Fatal(err)
						}
					}
					b.StopTimer()
					reportVirtual(b, d.ComputeEngine().Avail().Sub(start))
				})
			}
		})
	}
}

// runQuery executes one TPC-H query on a fresh rig and returns its stats.
func runQuery(b *testing.B, ds *tpch.Dataset, q string, useOpenCL bool, model core.Model) core.Result {
	b.Helper()
	rt := hub.NewRuntime()
	var d device.Device
	if useOpenCL {
		d = simopencl.NewGPU(&simhw.RTX2080Ti, nil)
	} else {
		d = simcuda.New(&simhw.RTX2080Ti, nil)
	}
	dev, err := rt.Register(d)
	if err != nil {
		b.Fatal(err)
	}
	g, err := tpch.BuildQuery(q, ds, dev)
	if err != nil {
		b.Fatal(err)
	}
	res, err := core.Run(rt, g, core.Options{Model: model, ChunkElems: benchChunk()})
	if err != nil {
		b.Fatal(err)
	}
	return *res
}

// BenchmarkFig10Overhead regenerates Figure 10: chunked execution per query
// and driver, with the abstraction overhead reported as "vms-overhead/op".
func BenchmarkFig10Overhead(b *testing.B) {
	ds := dataset(b, 100)
	for _, q := range []string{"Q3", "Q4", "Q6"} {
		for _, drv := range []string{"cuda", "opencl"} {
			b.Run(q+"/"+drv, func(b *testing.B) {
				var virtual, overhead vclock.Duration
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res := runQuery(b, ds, q, drv == "opencl", core.Chunked)
					virtual += res.Stats.Elapsed
					overhead += res.Stats.Elapsed - res.Stats.KernelTime - res.Stats.TransferTime
				}
				b.StopTimer()
				reportVirtual(b, virtual)
				b.ReportMetric(overhead.Seconds()*1e3/float64(b.N), "vms-overhead/op")
			})
		}
	}
}

// BenchmarkFig11Models regenerates Figure 11 (left): Q3/Q4/Q6 at SF100
// under the three execution models, per GPU driver.
func BenchmarkFig11Models(b *testing.B) {
	ds := dataset(b, 100)
	models := map[string]core.Model{
		"chunked":      core.Chunked,
		"4p-chunked":   core.FourPhaseChunked,
		"4p-pipelined": core.FourPhasePipelined,
	}
	for _, q := range []string{"Q3", "Q4", "Q6"} {
		for _, drv := range []string{"opencl", "cuda"} {
			for name, model := range models {
				b.Run(fmt.Sprintf("%s/%s/%s", q, drv, name), func(b *testing.B) {
					var virtual vclock.Duration
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						res := runQuery(b, ds, q, drv == "opencl", model)
						virtual += res.Stats.Elapsed
					}
					b.StopTimer()
					reportVirtual(b, virtual)
				})
			}
		}
	}
}

// BenchmarkFig11HeavyDB regenerates Figure 11 (right): the baseline's hot
// runs next to ADAMANT's 4-phase execution.
func BenchmarkFig11HeavyDB(b *testing.B) {
	ds := dataset(b, 100)
	b.Run("heavydb-hot/Q6", func(b *testing.B) {
		db := heavysim.New(heavysim.Config{GPU: &simhw.RTX2080Ti})
		var virtual vclock.Duration
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := db.Run("Q6", ds)
			if err != nil {
				b.Fatal(err)
			}
			virtual += res.Elapsed
		}
		b.StopTimer()
		reportVirtual(b, virtual)
	})
	b.Run("adamant-4p/Q6", func(b *testing.B) {
		var virtual vclock.Duration
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res := runQuery(b, ds, "Q6", false, core.FourPhasePipelined)
			virtual += res.Stats.Elapsed
		}
		b.StopTimer()
		reportVirtual(b, virtual)
	})
}

// BenchmarkAblationChunkSize sweeps the chunk size around the paper's 2^25
// optimum (scaled), showing the transfer-granularity trade-off.
func BenchmarkAblationChunkSize(b *testing.B) {
	ds := dataset(b, 100)
	base := benchChunk()
	for _, chunk := range []int{base / 16, base / 4, base, base * 4, base * 16} {
		if chunk < 64 {
			continue
		}
		b.Run(fmt.Sprintf("chunk-%d", chunk), func(b *testing.B) {
			rt := hub.NewRuntime()
			dev, err := rt.Register(simcuda.New(&simhw.RTX2080Ti, nil))
			if err != nil {
				b.Fatal(err)
			}
			var virtual vclock.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g, err := tpch.BuildQ6(ds, dev)
				if err != nil {
					b.Fatal(err)
				}
				res, err := core.Run(rt, g, core.Options{Model: core.FourPhasePipelined, ChunkElems: chunk})
				if err != nil {
					b.Fatal(err)
				}
				virtual += res.Stats.Elapsed
			}
			b.StopTimer()
			reportVirtual(b, virtual)
		})
	}
}

// BenchmarkAblationPinned isolates pinned staging: pageable overlapped
// (Pipelined) vs pinned overlapped (FourPhasePipelined).
func BenchmarkAblationPinned(b *testing.B) {
	ds := dataset(b, 100)
	for name, model := range map[string]core.Model{
		"pageable": core.Pipelined,
		"pinned":   core.FourPhasePipelined,
	} {
		b.Run(name, func(b *testing.B) {
			var virtual vclock.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := runQuery(b, ds, "Q6", false, model)
				virtual += res.Stats.Elapsed
			}
			b.StopTimer()
			reportVirtual(b, virtual)
		})
	}
}

// BenchmarkAblationDoubleBuffer isolates copy/compute overlap: 4-phase
// without (FourPhaseChunked) vs with (FourPhasePipelined) double buffering.
func BenchmarkAblationDoubleBuffer(b *testing.B) {
	ds := dataset(b, 100)
	for name, model := range map[string]core.Model{
		"serial":  core.FourPhaseChunked,
		"overlap": core.FourPhasePipelined,
	} {
		b.Run(name, func(b *testing.B) {
			var virtual vclock.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := runQuery(b, ds, "Q6", false, model)
				virtual += res.Stats.Elapsed
			}
			b.StopTimer()
			reportVirtual(b, virtual)
		})
	}
}

// BenchmarkAblationFilterRepresentation compares the two filter result
// representations of §III-B3: bitmap+materialize vs position list+gather.
func BenchmarkAblationFilterRepresentation(b *testing.B) {
	const n = 1 << 20
	values := make([]int32, n)
	for i := range values {
		values[i] = int32(i % 100)
	}
	eng := adamant.NewEngine()
	gpu, err := eng.Plug(adamant.RTX2080Ti, adamant.CUDA)
	if err != nil {
		b.Fatal(err)
	}

	build := func(positions bool) *adamant.Plan {
		plan := eng.NewPlan().On(gpu)
		col := plan.ScanInt32("v", values)
		var kept adamant.Port
		if positions {
			pos := plan.FilterPositions(col, adamant.Lt, 30, 0.4)
			kept = plan.Gather(col, pos)
		} else {
			bm := plan.Filter(col, adamant.Lt, 30)
			kept = plan.Materialize(col, bm)
		}
		plan.Return("sum", plan.SumInt64(plan.CastInt64(kept)))
		return plan
	}

	for name, positions := range map[string]bool{"bitmap": false, "positions": true} {
		b.Run(name, func(b *testing.B) {
			var virtual vclock.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := eng.Execute(build(positions), adamant.ExecOptions{Model: adamant.OperatorAtATime})
				if err != nil {
					b.Fatal(err)
				}
				virtual += vclock.DurationOf(res.Stats().Elapsed)
			}
			b.StopTimer()
			reportVirtual(b, virtual)
		})
	}
}

// BenchmarkAblationTransform compares the transform_memory path (re-tag in
// device) against bouncing data through the host to change SDK formats.
func BenchmarkAblationTransform(b *testing.B) {
	const n = 1 << 22
	d := simcuda.New(&simhw.RTX2080Ti, nil)
	if err := d.Initialize(); err != nil {
		b.Fatal(err)
	}
	buf, _, err := d.PlaceData(vec.New(vec.Int32, n), 0)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("transform-in-device", func(b *testing.B) {
		start := d.CopyEngine().Avail()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			target := devmem.FormatThrust
			if i%2 == 1 {
				target = devmem.FormatCUDA
			}
			if _, err := d.TransformMemory(buf, target, 0); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		reportVirtual(b, d.CopyEngine().Avail().Sub(start))
	})

	b.Run("bounce-through-host", func(b *testing.B) {
		host := vec.New(vec.Int32, n)
		start := d.CopyEngine().Avail()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := d.RetrieveData(buf, 0, n, host, 0); err != nil {
				b.Fatal(err)
			}
			if _, err := d.PlaceDataInto(buf, 0, host, 0); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		reportVirtual(b, d.CopyEngine().Avail().Sub(start))
	})
}

// BenchmarkConcurrentThroughput sweeps concurrent Q6 sessions through the
// session scheduler over one shared device, reporting end-to-end
// queries/sec and how many sessions had to wait for admission. The
// scheduler itself stays fixed (four in-flight sessions, full-card
// budget), so the higher offered loads show the admission queue working.
func BenchmarkConcurrentThroughput(b *testing.B) {
	ds := dataset(b, 10)
	for _, conc := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("sessions-%d", conc), func(b *testing.B) {
			rt := hub.NewRuntime()
			dev, err := rt.Register(simcuda.New(&simhw.RTX2080Ti, nil))
			if err != nil {
				b.Fatal(err)
			}
			d, err := rt.Device(dev)
			if err != nil {
				b.Fatal(err)
			}
			sched := session.NewScheduler(session.Config{MaxConcurrent: 4})
			sched.SetBudget(dev, d.Info().MemoryBytes)
			opts := exec.Options{Model: exec.FourPhasePipelined, ChunkElems: benchChunk()}
			ctx := context.Background()

			runOne := func() error {
				g, err := tpch.BuildQuery("Q6", ds, dev)
				if err != nil {
					return err
				}
				demand, err := exec.EstimateDemand(g, opts)
				if err != nil {
					return err
				}
				grant, err := sched.Admit(ctx, session.Request{Demand: demand})
				if err != nil {
					return err
				}
				defer grant.Release()
				_, err = exec.RunContext(ctx, rt, g, opts)
				return err
			}

			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				errs := make(chan error, conc)
				for s := 0; s < conc; s++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						if err := runOne(); err != nil {
							errs <- err
						}
					}()
				}
				wg.Wait()
				close(errs)
				for err := range errs {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(b.N*conc)/secs, "queries/s")
			}
			b.ReportMetric(float64(sched.Stats().Waited)/float64(b.N), "waits/op")
		})
	}
}

// TestTracingDisabledAllocs guards the overhead budget of DESIGN.md §9:
// with no recorder attached the executor's tracing seams reduce to nil
// checks, and every recorder method is a nil-receiver no-op. The guard
// drives the full nil-recorder method surface and demands zero allocations
// per operation — a full query run allocates for data regardless, so the
// seams themselves are what AllocsPerRun can pin down.
func TestTracingDisabledAllocs(t *testing.T) {
	var rec *trace.Recorder
	if n := testing.AllocsPerRun(1000, func() {
		id := rec.Add(trace.Span{Kind: trace.KindKernel, Label: "noop", Start: 1, End: 2})
		rec.SetRows(id, 64)
		if rec.Enabled() || rec.Len() != 0 || rec.Spans() != nil {
			t.Fatal("nil recorder must observe nothing")
		}
	}); n != 0 {
		t.Fatalf("disabled recorder: %.1f allocs/op on the hot path, want 0", n)
	}
}

// BenchmarkTraceOverhead measures the tracing layer's cost on chunked Q6:
// "off" is the production default (no recorder, guarded alloc-free by
// TestTracingDisabledAllocs), "on" attaches a fresh recorder per query.
// Run with -benchmem and compare allocs/op between the two cases to see
// the full recording overhead; spans/op reports the trace volume bought.
func BenchmarkTraceOverhead(b *testing.B) {
	ds := dataset(b, 10)
	run := func(b *testing.B, traced bool) {
		rt := hub.NewRuntime()
		dev, err := rt.Register(simcuda.New(&simhw.RTX2080Ti, nil))
		if err != nil {
			b.Fatal(err)
		}
		var virtual vclock.Duration
		var spans int
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g, err := tpch.BuildQ6(ds, dev)
			if err != nil {
				b.Fatal(err)
			}
			var rec *trace.Recorder
			if traced {
				rec = trace.NewRecorder()
			}
			res, err := core.Run(rt, g, core.Options{
				Model: core.Chunked, ChunkElems: benchChunk(), Recorder: rec,
			})
			if err != nil {
				b.Fatal(err)
			}
			virtual += res.Stats.Elapsed
			spans += rec.Len()
		}
		b.StopTimer()
		reportVirtual(b, virtual)
		if traced {
			b.ReportMetric(float64(spans)/float64(b.N), "spans/op")
		}
	}
	b.Run("off", func(b *testing.B) { run(b, false) })
	b.Run("on", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationPrefetchDepth sweeps the rotating staging-buffer count
// of the 4-phase pipelined model beyond Figure 8's double buffering.
func BenchmarkAblationPrefetchDepth(b *testing.B) {
	ds := dataset(b, 100)
	for _, depth := range []int{2, 3, 4, 8} {
		b.Run(fmt.Sprintf("buffers-%d", depth), func(b *testing.B) {
			rt := hub.NewRuntime()
			dev, err := rt.Register(simcuda.New(&simhw.RTX2080Ti, nil))
			if err != nil {
				b.Fatal(err)
			}
			var virtual vclock.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g, err := tpch.BuildQ6(ds, dev)
				if err != nil {
					b.Fatal(err)
				}
				res, err := core.Run(rt, g, core.Options{
					Model: core.FourPhasePipelined, ChunkElems: benchChunk(), StagingBuffers: depth,
				})
				if err != nil {
					b.Fatal(err)
				}
				virtual += res.Stats.Elapsed
			}
			b.StopTimer()
			reportVirtual(b, virtual)
		})
	}
}
