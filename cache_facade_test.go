package adamant_test

import (
	"strings"
	"testing"

	adamant "github.com/adamant-db/adamant"
)

// pinnedCachePlan returns a plan builder whose scanned column keeps the
// same backing array across calls, so repeat executions can hit the pool.
func pinnedCachePlan() func(eng *adamant.Engine, dev adamant.DeviceID) *adamant.Plan {
	vals := make([]int32, 4096)
	for i := range vals {
		vals[i] = int32(i % 100)
	}
	return func(eng *adamant.Engine, dev adamant.DeviceID) *adamant.Plan {
		plan := eng.NewPlan().On(dev)
		col := plan.ScanInt32("v", vals)
		kept := plan.Materialize(col, plan.Filter(col, adamant.Lt, 30))
		plan.Return("sum", plan.SumInt64(plan.CastInt64(kept)))
		return plan
	}
}

// TestCacheFacadeEndToEnd drives the buffer pool through the public API:
// WithBufferPool arms it, repeated queries hit it, stats/timeline/flush
// report it, and the telemetry scrape carries the cache metric families.
func TestCacheFacadeEndToEnd(t *testing.T) {
	eng := adamant.NewEngine(adamant.WithBufferPool(1<<20, adamant.CacheCostAware)).
		WithTelemetry(adamant.TelemetryConfig{})
	if !eng.CacheEnabled() {
		t.Fatal("WithBufferPool should enable the cache")
	}
	gpu, err := eng.Plug(adamant.RTX2080Ti, adamant.CUDA)
	if err != nil {
		t.Fatal(err)
	}
	build := pinnedCachePlan()
	opts := adamant.ExecOptions{Model: adamant.Pipelined, ChunkElems: 1024}
	var sums [2]int64
	for i := range sums {
		res, err := eng.Execute(build(eng, gpu), opts)
		if err != nil {
			t.Fatal(err)
		}
		sums[i] = res.Int64("sum")[0]
	}
	if sums[0] != sums[1] {
		t.Errorf("warm sum %d != cold sum %d", sums[1], sums[0])
	}

	st := eng.CacheStats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Errorf("stats = %+v, want exactly one miss then one hit", st)
	}
	if want := int64(4096 * 4); st.CachedBytes != want {
		t.Errorf("cached bytes = %d, want %d", st.CachedBytes, want)
	}
	if got := st.HitRatio(); got != 0.5 {
		t.Errorf("hit ratio = %v, want 0.5", got)
	}
	tl := eng.CacheTimeline()
	if len(tl) != 2 || tl[0].Hit || !tl[1].Hit {
		t.Errorf("timeline = %+v, want [miss hit]", tl)
	}

	var prom strings.Builder
	if err := eng.WriteProm(&prom); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"adamant_cache_hits_total 1",
		"adamant_cache_misses_total 1",
		"adamant_cache_shared_joins_total 0",
		"adamant_cache_bytes 16384",
		"adamant_cache_hit_ratio 0.5",
	} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	if freed := eng.FlushCache(); freed != int64(4096*4) {
		t.Errorf("flush freed %d bytes, want %d", freed, 4096*4)
	}
	if st := eng.CacheStats(); st.CachedBytes != 0 || st.Entries != 0 {
		t.Errorf("stats after flush = %+v, want empty pool", st)
	}
	// A post-flush run reloads cold and still answers correctly.
	res, err := eng.Execute(build(eng, gpu), opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Int64("sum")[0]; got != sums[0] {
		t.Errorf("post-flush sum = %d, want %d", got, sums[0])
	}
	if st := eng.CacheStats(); st.Misses != 2 {
		t.Errorf("post-flush stats = %+v, want a second miss", st)
	}
}

// TestCacheDisabledByDefault: without WithBufferPool every cache accessor
// degrades gracefully and queries use the legacy transfer path.
func TestCacheDisabledByDefault(t *testing.T) {
	eng := adamant.NewEngine()
	if eng.CacheEnabled() {
		t.Error("cache should be off by default")
	}
	if st := eng.CacheStats(); st != (adamant.CacheStats{}) {
		t.Errorf("disabled stats = %+v, want zero", st)
	}
	if tl := eng.CacheTimeline(); tl != nil {
		t.Errorf("disabled timeline = %v, want nil", tl)
	}
	if freed := eng.FlushCache(); freed != 0 {
		t.Errorf("disabled flush freed %d", freed)
	}
}

// TestParseCachePolicy pins the CLI policy names.
func TestParseCachePolicy(t *testing.T) {
	if p, err := adamant.ParseCachePolicy("cost"); err != nil || p != adamant.CacheCostAware {
		t.Errorf("cost -> %v, %v", p, err)
	}
	if p, err := adamant.ParseCachePolicy("lru"); err != nil || p != adamant.CacheLRU {
		t.Errorf("lru -> %v, %v", p, err)
	}
	if _, err := adamant.ParseCachePolicy("mru"); err == nil {
		t.Error("unknown policy should error")
	}
}
