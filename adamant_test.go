package adamant_test

import (
	"testing"

	adamant "github.com/adamant-db/adamant"
)

func engineWithGPU(t *testing.T) (*adamant.Engine, adamant.DeviceID) {
	t.Helper()
	eng := adamant.NewEngine()
	gpu, err := eng.Plug(adamant.RTX2080Ti, adamant.CUDA)
	if err != nil {
		t.Fatalf("plug: %v", err)
	}
	return eng, gpu
}

// TestFacadeQuickstart runs the doc-comment query end to end.
func TestFacadeQuickstart(t *testing.T) {
	eng, gpu := engineWithGPU(t)

	n := 10000
	prices := make([]int32, n)
	discounts := make([]int32, n)
	var want int64
	for i := range prices {
		prices[i] = int32(i%1000 + 1)
		discounts[i] = int32(i % 11)
		if d := discounts[i]; d >= 5 && d <= 7 {
			want += int64(prices[i]) * int64(d)
		}
	}

	plan := eng.NewPlan().On(gpu)
	price := plan.ScanInt32("price", prices)
	disc := plan.ScanInt32("discount", discounts)
	keep := plan.FilterBetween(disc, 5, 7)
	rev := plan.Mul(plan.Materialize(price, keep), plan.Materialize(disc, keep))
	plan.Return("revenue", plan.SumInt64(rev))

	for _, model := range []adamant.Model{adamant.OperatorAtATime, adamant.Chunked, adamant.FourPhasePipelined} {
		res, err := eng.Execute(plan, adamant.ExecOptions{Model: model, ChunkElems: 2048})
		if err != nil {
			t.Fatalf("%v: %v", model, err)
		}
		if got := res.Int64("revenue")[0]; got != want {
			t.Errorf("%v: revenue = %d, want %d", model, got, want)
		}
		if res.Stats().Elapsed <= 0 {
			t.Errorf("%v: non-positive elapsed", model)
		}
	}
}

// TestFacadeMultiDevice builds on one device and probes on another; the
// runtime's router must move the hash table between them.
func TestFacadeMultiDevice(t *testing.T) {
	eng := adamant.NewEngine()
	cpu, err := eng.Plug(adamant.CoreI78700, adamant.OpenMP)
	if err != nil {
		t.Fatalf("plug cpu: %v", err)
	}
	gpu, err := eng.Plug(adamant.RTX2080Ti, adamant.CUDA)
	if err != nil {
		t.Fatalf("plug gpu: %v", err)
	}

	buildKeys := []int32{2, 4, 6, 8}
	probeKeys := make([]int32, 1000)
	var want int64
	for i := range probeKeys {
		probeKeys[i] = int32(i % 10)
		if probeKeys[i]%2 == 0 && probeKeys[i] >= 2 && probeKeys[i] <= 8 {
			want++
		}
	}

	plan := eng.NewPlan().On(cpu)
	bk := plan.ScanInt32("build", buildKeys)
	set := plan.BuildKeySet(bk, len(buildKeys))

	plan.On(gpu)
	pk := plan.ScanInt32("probe", probeKeys)
	hit := plan.ExistsIn(pk, set)
	plan.Return("hits", plan.CountBits(hit))

	res, err := eng.Execute(plan, adamant.ExecOptions{Model: adamant.Chunked, ChunkElems: 256})
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	if got := res.Int64("hits")[0]; got != want {
		t.Errorf("hits = %d, want %d", got, want)
	}
}

// TestFacadeErrors verifies deferred error reporting.
func TestFacadeErrors(t *testing.T) {
	eng, _ := engineWithGPU(t)

	// Plan with no device.
	p := eng.NewPlan()
	p.ScanInt32("x", []int32{1})
	if _, err := eng.Execute(p, adamant.ExecOptions{}); err == nil {
		t.Error("expected error for plan without device")
	}

	// Invalid SDK pairings.
	if _, err := eng.Plug(adamant.CoreI78700, adamant.CUDA); err == nil {
		t.Error("expected error plugging CUDA on a CPU")
	}
	if _, err := eng.Plug(adamant.RTX2080Ti, adamant.OpenMP); err == nil {
		t.Error("expected error plugging OpenMP on a GPU")
	}
}

// TestDevices reports plugged device metadata.
func TestDevices(t *testing.T) {
	eng, _ := engineWithGPU(t)
	devs := eng.Devices()
	if len(devs) != 1 {
		t.Fatalf("got %d devices, want 1", len(devs))
	}
	d := devs[0]
	if d.SDK != "CUDA" || d.HostResident || !d.PinnedTransfer {
		t.Errorf("unexpected device info: %+v", d)
	}
}
