package adamant

import (
	"github.com/adamant-db/adamant/internal/cost"
	"github.com/adamant-db/adamant/internal/device"
	"github.com/adamant-db/adamant/internal/exec"
	"github.com/adamant-db/adamant/internal/graph"
)

// CostCatalog is the engine's learned cost store: per-(primitive, driver,
// size-bucket) execution rates fed by every auto-planned query's trace,
// EWMA-smoothed, deterministically serializable (WriteTo/Keys). See
// Engine.CostCatalog.
type CostCatalog = cost.Catalog

// AutoDecision is one auto-planner outcome: the chosen execution model,
// chunk size, primary device, and the human-readable notes that become the
// trace's autoplan spans.
type AutoDecision = cost.Decision

// WithAutoPlan arms cost-catalog-driven auto planning: every query through
// the engine gets its device placement, execution model, and initial chunk
// size chosen from the engine's learned cost catalog (ExecOptions.Model and
// ChunkElems become hints the planner overrides). The first auto-planned
// query triggers a one-time calibration pass seeding the catalog with
// measured rates for the workhorse primitives on every plugged device;
// every subsequent query's trace feeds the catalog, so plans improve as the
// engine observes its own workload. When observed pipeline cardinality
// drifts 2x from the optimizer's estimate mid-query, the executor restarts
// the attempt once with a re-sized chunk (bit-identical results by
// construction — the same restart mechanism failover uses).
func WithAutoPlan() EngineOption {
	return func(c *engineConfig) { c.auto = true }
}

// AutoPlanEnabled reports whether the engine auto-plans queries.
func (e *Engine) AutoPlanEnabled() bool { return e.auto }

// CostCatalog exposes the engine's learned cost catalog for inspection,
// serialization (WriteTo), or pre-warming from a previous run (load with
// cost.Read and SeedCatalog). Nil without WithAutoPlan.
func (e *Engine) CostCatalog() *CostCatalog { return e.catalog }

// SeedCatalog replaces the engine's catalog contents with a previously
// serialized one (see CostCatalog().WriteTo), skipping the calibration pass:
// a warm catalog reproduces the plans of the engine that wrote it.
func (e *Engine) SeedCatalog(c *CostCatalog) {
	if !e.auto || c == nil {
		return
	}
	e.calMu.Lock()
	e.catalog = c
	e.planner = cost.NewPlanner(c)
	e.calibrated = true
	e.calMu.Unlock()
}

// autoPlan calibrates once, then plans the graph against every plugged
// device. It returns the decision whose fields runGraph lowers onto the
// executor options.
func (e *Engine) autoPlan(g *graph.Graph) (*cost.Decision, error) {
	e.calMu.Lock()
	if !e.calibrated {
		// Calibration runs tiny probe queries directly on the runtime
		// (outside admission — their demand is negligible). Devices that
		// fail the probe are skipped; the analytic fallback covers them.
		if err := cost.Calibrate(e.rt, e.allDevices(), e.catalog); err != nil {
			e.calMu.Unlock()
			return nil, err
		}
		e.calibrated = true
	}
	planner := e.planner
	e.calMu.Unlock()
	return planner.Plan(g, e.rt, cost.PlanOptions{Candidates: e.allDevices()})
}

// allDevices lists every plugged device ID in registration order.
func (e *Engine) allDevices() []device.ID {
	n := len(e.rt.Devices())
	ids := make([]device.ID, n)
	for i := range ids {
		ids[i] = device.ID(i)
	}
	return ids
}

// observeAutoPlan feeds a finished auto-planned query back into the
// catalog: per-primitive rates from its spans always, and the whole-query
// rate for the (model, driver) cell only when the run succeeded (a faulted
// run's elapsed time is not the configuration's cost).
func (e *Engine) observeAutoPlan(dec *cost.Decision, opts exec.Options, res *exec.Result, runErr error, mark int) {
	spans := opts.Recorder.Spans()
	if mark < len(spans) {
		e.catalog.ObserveSpans(spans[mark:])
	}
	if runErr == nil && res != nil {
		e.catalog.ObserveQuery(opts.Model.String(), dec.Driver, dec.Rows, res.Stats.Elapsed)
	}
	if t := e.tele; t != nil {
		t.autoplanQueries.Add(1, dec.Driver, opts.Model.String())
		if res != nil && res.Stats.Replans > 0 {
			t.autoplanReplans.Add(float64(res.Stats.Replans), opts.Model.String())
		}
	}
}
