package adamant_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/adamant-db/adamant/internal/bufpool"
	"github.com/adamant-db/adamant/internal/driver/simcuda"
	"github.com/adamant-db/adamant/internal/exec"
	"github.com/adamant-db/adamant/internal/hub"
	"github.com/adamant-db/adamant/internal/simhw"
	"github.com/adamant-db/adamant/internal/tpch"
	"github.com/adamant-db/adamant/internal/trace"
	"github.com/adamant-db/adamant/internal/vclock"
)

// q6BaseColumns are the base columns Q6 scans; the warm-cache trace must
// show no H2D transfer for any of them.
var q6BaseColumns = []string{
	"lineitem.l_shipdate",
	"lineitem.l_discount",
	"lineitem.l_quantity",
	"lineitem.l_extendedprice",
}

// warmCacheQ6Trace runs Q6 twice on one runtime with the buffer pool: the
// cold run fills the pool unrecorded, the warm run records. It returns the
// rendered observability text and the warm run's spans.
func warmCacheQ6Trace(t *testing.T, model exec.Model) (string, []trace.Span) {
	t.Helper()
	ds, err := tpch.Generate(tpch.Config{SF: 1, Ratio: 1.0 / 4096, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	rt := hub.NewRuntime()
	id, err := rt.Register(simcuda.New(&simhw.RTX2080Ti, nil))
	if err != nil {
		t.Fatal(err)
	}
	pool := bufpool.New(bufpool.Config{Capacity: 1 << 26, Device: rt.Device})

	g, err := tpch.BuildQuery("Q6", ds, id)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exec.Run(rt, g, exec.Options{Model: model, ChunkElems: 512, Pool: pool}); err != nil {
		t.Fatalf("cold Q6: %v", err)
	}

	g, err = tpch.BuildQuery("Q6", ds, id)
	if err != nil {
		t.Fatal(err)
	}
	pipelines, err := g.BuildPipelines()
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder()
	res, err := exec.Run(rt, g, exec.Options{Model: model, ChunkElems: 512, Pool: pool, Recorder: rec})
	if err != nil {
		t.Fatalf("warm Q6: %v", err)
	}
	var b strings.Builder
	exec.WriteAnalyze(&b, g, pipelines, res.Stats, rec.Spans())
	b.WriteString("\n")
	trace.WriteSummary(&b, rec.Spans())
	return b.String(), rec.Spans()
}

// TestGoldenTraceWarmCacheQ6 pins the warm-cache rendering of Q6: with
// every base column already pooled, the recorded trace contains zero
// base-column H2D spans — the transfer path is fully bypassed — and cache
// spans mark each pooled scan as a hit. The rendering is bit-for-bit
// deterministic and pinned against a golden file.
func TestGoldenTraceWarmCacheQ6(t *testing.T) {
	model := exec.FourPhasePipelined
	got, spans := warmCacheQ6Trace(t, model)
	if again, _ := warmCacheQ6Trace(t, model); again != got {
		t.Fatalf("warm-cache trace not deterministic across two runs:\n%s", diffLines(again, got))
	}

	for _, s := range spans {
		if s.Kind != trace.KindH2D {
			continue
		}
		for _, col := range q6BaseColumns {
			if strings.Contains(s.Label, col) {
				t.Errorf("warm trace has base-column H2D span %q; the pool must serve it", s.Label)
			}
		}
	}
	var cacheHits int
	for _, s := range spans {
		if s.Kind == trace.KindCache && strings.HasPrefix(s.Label, "hit ") {
			cacheHits++
		}
	}
	if cacheHits != len(q6BaseColumns) {
		t.Errorf("warm trace has %d cache-hit spans, want %d (one per base column)",
			cacheHits, len(q6BaseColumns))
	}
	path := filepath.Join("testdata", "traces", "Q6-warm-cache.txt")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run: go test -run TestGoldenTraceWarmCacheQ6 -update .): %v", err)
	}
	if got != string(want) {
		t.Errorf("golden mismatch for %s (re-bless with -update if intended):\n%s",
			path, diffLines(got, string(want)))
	}
}

// TestWarmCacheSpeedupQ6 is the repeated-workload acceptance benchmark: on
// a realistic Q6 working set, the warm (pooled) run must finish at least
// twice as fast as the cold run in virtual time, because the base-column
// transfers dominate the cold run and disappear from the warm one.
func TestWarmCacheSpeedupQ6(t *testing.T) {
	ds, err := tpch.Generate(tpch.Config{SF: 100, Ratio: 1.0 / 1024, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	rt := hub.NewRuntime()
	id, err := rt.Register(simcuda.New(&simhw.RTX2080Ti, nil))
	if err != nil {
		t.Fatal(err)
	}
	pool := bufpool.New(bufpool.Config{Capacity: 1 << 30, Device: rt.Device})
	opts := exec.Options{Model: exec.OperatorAtATime, ChunkElems: 32768, Pool: pool}

	var elapsed [2]vclock.Duration
	for i := range elapsed {
		g, err := tpch.BuildQuery("Q6", ds, id)
		if err != nil {
			t.Fatal(err)
		}
		res, err := exec.Run(rt, g, opts)
		if err != nil {
			t.Fatal(err)
		}
		elapsed[i] = res.Stats.Elapsed
	}
	cold, warm := elapsed[0], elapsed[1]
	if warm <= 0 || cold < 2*warm {
		t.Errorf("warm run %v vs cold %v: speedup %.2fx, want >= 2x",
			warm, cold, float64(cold)/float64(warm))
	}
	st := pool.Stats()
	if st.Misses != uint64(len(q6BaseColumns)) || st.Hits != uint64(len(q6BaseColumns)) {
		t.Errorf("pool stats %+v: want %d misses then %d hits", st, len(q6BaseColumns), len(q6BaseColumns))
	}
	t.Logf("cold %v, warm %v (%.1fx)", cold, warm, float64(cold)/float64(warm))
}
