package adamant

import (
	"fmt"
	"strings"
)

// Explain renders the plan's primitive graph as text: its pipelines (split
// at pipeline breakers, as the runtime will execute them), each pipeline's
// streamed inputs, and the primitives in execution order. Breakers are
// marked with the paper's dagger.
func (p *Plan) Explain() (string, error) {
	if err := p.err(); err != nil {
		return "", err
	}
	pipelines, err := p.g.BuildPipelines()
	if err != nil {
		return "", err
	}

	var b strings.Builder
	for _, pl := range pipelines {
		fmt.Fprintf(&b, "pipeline %d", pl.Index)
		if len(pl.DependsOn) > 0 {
			fmt.Fprintf(&b, " (after %v)", pl.DependsOn)
		}
		if rows := pl.ScanRows(p.g); rows > 0 {
			fmt.Fprintf(&b, " — %d rows", rows)
		}
		b.WriteString("\n")
		for _, sid := range pl.Scans {
			fmt.Fprintf(&b, "  scan %s\n", p.g.Node(sid).Scan.Name)
		}
		for _, nid := range pl.Nodes {
			n := p.g.Node(nid)
			dagger := ""
			if n.Breaker() {
				dagger = " †"
			}
			fmt.Fprintf(&b, "  %s%s\n", n.Task, dagger)
		}
	}
	if results := p.g.Results(); len(results) > 0 {
		b.WriteString("returns:")
		for _, r := range results {
			fmt.Fprintf(&b, " %s", r.Name)
		}
		b.WriteString("\n")
	}
	return b.String(), nil
}
