package adamant

import (
	"fmt"
	"strings"

	"github.com/adamant-db/adamant/internal/graph"
)

// Explain renders the plan's primitive graph as text: its pipelines (split
// at pipeline breakers, as the runtime will execute them) with exact or
// estimated row counts, each pipeline's streamed inputs, and the
// primitives in execution order. Breakers are marked with the paper's
// dagger.
func (p *Plan) Explain() (string, error) {
	if err := p.err(); err != nil {
		return "", err
	}
	pipelines, err := p.g.BuildPipelines()
	if err != nil {
		return "", err
	}

	var b strings.Builder
	graph.WriteExplain(&b, p.g, pipelines, "")
	if results := p.g.Results(); len(results) > 0 {
		b.WriteString("returns:")
		for _, r := range results {
			fmt.Fprintf(&b, " %s", r.Name)
		}
		b.WriteString("\n")
	}
	return b.String(), nil
}
