// Package adamant is a query executor with plug-in interfaces for easy
// co-processor integration — a pure-Go reproduction of the ICDE 2023 paper
// of the same name.
//
// ADAMANT splits query execution into three loosely coupled layers. The
// device layer is a set of ten pluggable interfaces (place_data,
// retrieve_data, prepare_memory, transform_memory, delete_memory,
// prepare_kernel, initialize, create_chunk, add_pinned_memory, execute)
// behind which any co-processor SDK can sit. The task layer encapsulates
// implementations of granular database primitives (filters, maps,
// materializations, hash builds/probes, aggregations) and enforces their
// I/O signatures. The runtime layer interprets a primitive graph and
// executes it on whatever devices are plugged in, under one of several
// execution models: operator-at-a-time, chunked (scales past device
// memory), pipelined (copy/compute overlap), and 4-phase pipelined (pinned
// double buffers with memory reuse).
//
// Because Go has no practical CUDA/OpenCL bindings, the co-processors
// behind the device layer are simulated: kernels execute natively on the
// host (real results, data-parallel across goroutines) while calibrated
// cost models advance a virtual clock that reproduces the relative
// behaviour of the paper's CUDA, OpenCL and OpenMP drivers on its two
// evaluation machines.
//
// # Quick start
//
//	eng := adamant.NewEngine()
//	gpu, _ := eng.Plug(adamant.RTX2080Ti, adamant.CUDA)
//
//	plan := eng.NewPlan()
//	plan.On(gpu)
//	price := plan.ScanInt32("price", prices)
//	disc := plan.ScanInt32("discount", discounts)
//	keep := plan.FilterBetween(disc, 5, 7)
//	rev := plan.Mul(plan.Materialize(price, keep), plan.Materialize(disc, keep))
//	plan.Return("revenue", plan.SumInt64(rev))
//
//	res, _ := eng.Execute(plan, adamant.ExecOptions{Model: adamant.FourPhasePipelined})
//	total := res.Int64("revenue")[0]
package adamant

import (
	"fmt"

	"github.com/adamant-db/adamant/internal/core"
	"github.com/adamant-db/adamant/internal/device"
	"github.com/adamant-db/adamant/internal/driver/simcuda"
	"github.com/adamant-db/adamant/internal/driver/simomp"
	"github.com/adamant-db/adamant/internal/driver/simopencl"
	"github.com/adamant-db/adamant/internal/exec"
	"github.com/adamant-db/adamant/internal/hub"
	"github.com/adamant-db/adamant/internal/simhw"
)

// Hardware names a simulated processor model.
type Hardware int

// Available hardware models (the paper's two setups plus the GPUs of its
// capacity analysis).
const (
	RTX2080Ti Hardware = iota
	A100
	GTX1050
	GTX1080
	CoreI78700
	XeonGold5220R
)

func (h Hardware) spec() (*simhw.Spec, error) {
	switch h {
	case RTX2080Ti:
		return &simhw.RTX2080Ti, nil
	case A100:
		return &simhw.A100, nil
	case GTX1050:
		return &simhw.GTX1050, nil
	case GTX1080:
		return &simhw.GTX1080, nil
	case CoreI78700:
		return &simhw.CoreI78700, nil
	case XeonGold5220R:
		return &simhw.XeonGold5220R, nil
	default:
		return nil, fmt.Errorf("adamant: unknown hardware %d", int(h))
	}
}

// String returns the marketing name of the hardware.
func (h Hardware) String() string {
	if s, err := h.spec(); err == nil {
		return s.Name
	}
	return fmt.Sprintf("hardware(%d)", int(h))
}

// SDK names a programming SDK a device can be plugged through.
type SDK int

// Available SDKs.
const (
	CUDA SDK = iota
	OpenCL
	OpenMP
)

// String returns the SDK name.
func (s SDK) String() string {
	switch s {
	case CUDA:
		return "CUDA"
	case OpenCL:
		return "OpenCL"
	case OpenMP:
		return "OpenMP"
	default:
		return fmt.Sprintf("sdk(%d)", int(s))
	}
}

// Model selects an execution model (§IV of the paper).
type Model = core.Model

// Execution models.
const (
	// OperatorAtATime keeps whole columns and intermediates resident;
	// fastest when data fits device memory, fails with OOM otherwise.
	OperatorAtATime = core.OperatorAtATime
	// Chunked is the naive chunked model (Algorithm 1): scales to
	// larger-than-memory data with strictly serial transfers.
	Chunked = core.Chunked
	// Pipelined overlaps transfers with execution (Algorithm 2).
	Pipelined = core.Pipelined
	// FourPhaseChunked stages pinned double buffers and reuses them
	// across chunks (Algorithm 3 without overlap).
	FourPhaseChunked = core.FourPhaseChunked
	// FourPhasePipelined is the full 4-phase model: pinned double
	// buffers, memory reuse, and copy/compute overlap.
	FourPhasePipelined = core.FourPhasePipelined
)

// DeviceID identifies a plugged device within an Engine.
type DeviceID = device.ID

// ExecOptions configures one query execution.
type ExecOptions struct {
	// Model is the execution model (default OperatorAtATime).
	Model Model
	// ChunkElems is the chunk size in values (default 2^25, the paper's).
	ChunkElems int
	// Trace records a device-memory footprint sample per primitive.
	Trace bool
}

// Engine is the unified runtime: a registry of plugged co-processors plus
// the execution models that run primitive graphs on them.
type Engine struct {
	rt *hub.Runtime
}

// NewEngine returns an engine with no devices plugged.
func NewEngine() *Engine {
	return &Engine{rt: hub.NewRuntime()}
}

// Plug registers a simulated co-processor accessed through the given SDK
// and returns its device ID. Plugging is the only device-specific step: the
// execution models work unchanged with whatever is plugged.
func (e *Engine) Plug(hw Hardware, sdk SDK) (DeviceID, error) {
	spec, err := hw.spec()
	if err != nil {
		return 0, err
	}
	var d device.Device
	switch sdk {
	case CUDA:
		if spec.HostResident() {
			return 0, fmt.Errorf("adamant: CUDA cannot drive host CPU %s", spec.Name)
		}
		d = simcuda.New(spec, nil)
	case OpenCL:
		if spec.HostResident() {
			d = simopencl.NewCPU(spec, nil)
		} else {
			d = simopencl.NewGPU(spec, nil)
		}
	case OpenMP:
		if !spec.HostResident() {
			return 0, fmt.Errorf("adamant: OpenMP cannot drive GPU %s", spec.Name)
		}
		d = simomp.New(spec, nil)
	default:
		return 0, fmt.Errorf("adamant: unknown SDK %d", int(sdk))
	}
	return e.rt.Register(d)
}

// PlugDevice registers a custom device implementation. Any type satisfying
// the device layer's ten interfaces can be plugged without changing the
// runtime — the paper's headline claim.
func (e *Engine) PlugDevice(d device.Device) (DeviceID, error) {
	return e.rt.Register(d)
}

// DeviceInfo describes a plugged device.
type DeviceInfo struct {
	ID             DeviceID
	Name           string
	SDK            string
	MemoryBytes    int64
	HostResident   bool
	PinnedTransfer bool
	RuntimeCompile bool
}

// Devices lists the plugged devices.
func (e *Engine) Devices() []DeviceInfo {
	var out []DeviceInfo
	for i, d := range e.rt.Devices() {
		info := d.Info()
		out = append(out, DeviceInfo{
			ID:             DeviceID(i),
			Name:           info.Name,
			SDK:            info.SDK,
			MemoryBytes:    info.MemoryBytes,
			HostResident:   info.HostResident,
			PinnedTransfer: info.PinnedTransfer,
			RuntimeCompile: info.RuntimeCompile,
		})
	}
	return out
}

// Execute runs a plan under the given options.
func (e *Engine) Execute(p *Plan, opts ExecOptions) (*Result, error) {
	if err := p.err(); err != nil {
		return nil, err
	}
	res, err := exec.Run(e.rt, p.graph(), exec.Options{
		Model:      exec.Model(opts.Model),
		ChunkElems: opts.ChunkElems,
		Trace:      opts.Trace,
	})
	if err != nil {
		return nil, err
	}
	return newResult(res), nil
}

// Runtime exposes the underlying device registry for advanced integrations
// (custom experiment harnesses, direct device access).
func (e *Engine) Runtime() *hub.Runtime { return e.rt }
