// Package adamant is a query executor with plug-in interfaces for easy
// co-processor integration — a pure-Go reproduction of the ICDE 2023 paper
// of the same name.
//
// ADAMANT splits query execution into three loosely coupled layers. The
// device layer is a set of ten pluggable interfaces (place_data,
// retrieve_data, prepare_memory, transform_memory, delete_memory,
// prepare_kernel, initialize, create_chunk, add_pinned_memory, execute)
// behind which any co-processor SDK can sit. The task layer encapsulates
// implementations of granular database primitives (filters, maps,
// materializations, hash builds/probes, aggregations) and enforces their
// I/O signatures. The runtime layer interprets a primitive graph and
// executes it on whatever devices are plugged in, under one of several
// execution models: operator-at-a-time, chunked (scales past device
// memory), pipelined (copy/compute overlap), and 4-phase pipelined (pinned
// double buffers with memory reuse).
//
// Because Go has no practical CUDA/OpenCL bindings, the co-processors
// behind the device layer are simulated: kernels execute natively on the
// host (real results, data-parallel across goroutines) while calibrated
// cost models advance a virtual clock that reproduces the relative
// behaviour of the paper's CUDA, OpenCL and OpenMP drivers on its two
// evaluation machines.
//
// # Quick start
//
//	eng := adamant.NewEngine()
//	gpu, _ := eng.Plug(adamant.RTX2080Ti, adamant.CUDA)
//
//	plan := eng.NewPlan()
//	plan.On(gpu)
//	price := plan.ScanInt32("price", prices)
//	disc := plan.ScanInt32("discount", discounts)
//	keep := plan.FilterBetween(disc, 5, 7)
//	rev := plan.Mul(plan.Materialize(price, keep), plan.Materialize(disc, keep))
//	plan.Return("revenue", plan.SumInt64(rev))
//
//	res, _ := eng.Execute(plan, adamant.ExecOptions{Model: adamant.FourPhasePipelined})
//	total := res.Int64("revenue")[0]
package adamant

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/adamant-db/adamant/internal/bufpool"
	"github.com/adamant-db/adamant/internal/core"
	"github.com/adamant-db/adamant/internal/cost"
	"github.com/adamant-db/adamant/internal/device"
	"github.com/adamant-db/adamant/internal/driver/simcuda"
	"github.com/adamant-db/adamant/internal/driver/simomp"
	"github.com/adamant-db/adamant/internal/driver/simopencl"
	"github.com/adamant-db/adamant/internal/exec"
	"github.com/adamant-db/adamant/internal/fault"
	"github.com/adamant-db/adamant/internal/graph"
	"github.com/adamant-db/adamant/internal/hub"
	"github.com/adamant-db/adamant/internal/profile"
	"github.com/adamant-db/adamant/internal/session"
	"github.com/adamant-db/adamant/internal/shard"
	"github.com/adamant-db/adamant/internal/simhw"
	"github.com/adamant-db/adamant/internal/telemetry"
	"github.com/adamant-db/adamant/internal/trace"
	"github.com/adamant-db/adamant/internal/vclock"
)

// Hardware names a simulated processor model.
type Hardware int

// Available hardware models (the paper's two setups plus the GPUs of its
// capacity analysis).
const (
	RTX2080Ti Hardware = iota
	A100
	GTX1050
	GTX1080
	CoreI78700
	XeonGold5220R
)

func (h Hardware) spec() (*simhw.Spec, error) {
	switch h {
	case RTX2080Ti:
		return &simhw.RTX2080Ti, nil
	case A100:
		return &simhw.A100, nil
	case GTX1050:
		return &simhw.GTX1050, nil
	case GTX1080:
		return &simhw.GTX1080, nil
	case CoreI78700:
		return &simhw.CoreI78700, nil
	case XeonGold5220R:
		return &simhw.XeonGold5220R, nil
	default:
		return nil, fmt.Errorf("adamant: unknown hardware %d", int(h))
	}
}

// String returns the marketing name of the hardware.
func (h Hardware) String() string {
	if s, err := h.spec(); err == nil {
		return s.Name
	}
	return fmt.Sprintf("hardware(%d)", int(h))
}

// SDK names a programming SDK a device can be plugged through.
type SDK int

// Available SDKs.
const (
	CUDA SDK = iota
	OpenCL
	OpenMP
)

// String returns the SDK name.
func (s SDK) String() string {
	switch s {
	case CUDA:
		return "CUDA"
	case OpenCL:
		return "OpenCL"
	case OpenMP:
		return "OpenMP"
	default:
		return fmt.Sprintf("sdk(%d)", int(s))
	}
}

// Model selects an execution model (§IV of the paper).
type Model = core.Model

// Execution models.
const (
	// OperatorAtATime keeps whole columns and intermediates resident;
	// fastest when data fits device memory, fails with OOM otherwise.
	OperatorAtATime = core.OperatorAtATime
	// Chunked is the naive chunked model (Algorithm 1): scales to
	// larger-than-memory data with strictly serial transfers.
	Chunked = core.Chunked
	// Pipelined overlaps transfers with execution (Algorithm 2).
	Pipelined = core.Pipelined
	// FourPhaseChunked stages pinned double buffers and reuses them
	// across chunks (Algorithm 3 without overlap).
	FourPhaseChunked = core.FourPhaseChunked
	// FourPhasePipelined is the full 4-phase model: pinned double
	// buffers, memory reuse, and copy/compute overlap.
	FourPhasePipelined = core.FourPhasePipelined
)

// DeviceID identifies a plugged device within an Engine.
type DeviceID = device.ID

// ExecOptions configures one query execution.
type ExecOptions struct {
	// Model is the execution model (default OperatorAtATime).
	Model Model
	// ChunkElems is the chunk size in values (default 2^25, the paper's).
	ChunkElems int
	// Trace records a device-memory footprint sample per primitive.
	Trace bool
	// Priority orders this query in the admission queue under the
	// Priority admission policy; higher runs first. Ignored under FIFO.
	Priority int
	// Recorder, when non-nil, captures a per-operation execution trace of
	// the query (see NewTraceRecorder). Nil disables tracing at zero cost.
	Recorder *TraceRecorder
	// Deadline, when positive, is this query's virtual-time budget,
	// overriding the engine-wide WithDeadline setting. It is enforced at
	// admission (load shedding) and at every chunk boundary; violations
	// fail with an error wrapping ErrDeadline.
	Deadline time.Duration
	// Tenant labels this query's resource usage in the fleet profiler
	// (see WithProfile); empty falls back to the engine-wide WithTenant
	// default. Ignored when profiling is off.
	Tenant string
}

// ErrAdmission is the sentinel every admission rejection wraps: the
// session scheduler refused the query (its working set exceeds a device
// budget, or the admission queue is full) rather than letting it OOM a
// running session. Match with errors.Is.
var ErrAdmission = session.ErrAdmission

// ErrDeadline is the sentinel every virtual-time deadline violation wraps:
// a query shed at admission because its predicted queue wait exceeded its
// deadline, or cut at a chunk boundary after overrunning it. Match with
// errors.Is.
var ErrDeadline = vclock.ErrDeadline

// AdmissionPolicy selects the order in which queued queries are admitted.
type AdmissionPolicy = session.Policy

// Admission policies.
const (
	// FIFOAdmission admits queued queries in arrival order.
	FIFOAdmission = session.FIFO
	// PriorityAdmission admits the highest ExecOptions.Priority first.
	PriorityAdmission = session.Priority
)

// AdmissionStats snapshots the engine's session-scheduler counters.
type AdmissionStats = session.Stats

// FaultPlan is a deterministic fault-injection schedule applied to devices
// as they are plugged: seeded per-operation fault probabilities, an
// explicit step script, or both. Zero value = no faults. See
// ParseFaultPlan for the textual form used by the CLI's -faults flag.
type FaultPlan = fault.Plan

// ErrInjected is the sentinel every injected fault wraps; ErrDeviceLost
// marks the subset where a device died. Match with errors.Is to tell a
// deliberately injected failure from a genuine executor bug.
var (
	ErrInjected   = fault.ErrInjected
	ErrDeviceLost = fault.ErrDeviceLost
)

// ParseFaultPlan parses the textual fault-plan form, e.g.
// "seed=7,transient=0.01,oom=0.001,die=500,dev=cuda".
func ParseFaultPlan(spec string) (*FaultPlan, error) { return fault.ParsePlan(spec) }

// RetryPolicy configures transient-fault retries at the device interfaces.
// Durations are charged in simulated device time.
type RetryPolicy struct {
	// MaxRetries re-attempts per device operation (0 disables retries).
	MaxRetries int
	// Backoff before the first retry, doubling up to BackoffCap.
	// Defaults: 50µs / 5ms when MaxRetries is set.
	Backoff    time.Duration
	BackoffCap time.Duration
}

// DeviceLostError is the typed failure surfaced when a device dies and no
// viable fallback remains; it wraps ErrDeviceLost (and so ErrInjected for
// injected deaths). Match with errors.As to learn which device was lost.
type DeviceLostError = exec.DeviceLostError

// OOMError is the typed failure surfaced when a device allocation fails
// and adaptive chunking is off (or exhausted). It records the device the
// allocation failed on.
type OOMError = exec.OOMError

// RuntimeEvent is one degradation action from a query's event log (e.g. a
// failover from a dead device to its fallback).
type RuntimeEvent = exec.RuntimeEvent

// EventFailover marks a query re-placed from a lost device to a fallback.
const EventFailover = exec.EventFailover

// EventDegrade marks one step of the adaptive OOM ladder: a chunk-size
// halving or the last-resort re-placement onto a host-resident device.
const EventDegrade = exec.EventDegrade

// EventReplan marks a mid-query re-plan: the auto planner re-sized the
// chunk after observed cardinality drifted from the estimate.
const EventReplan = exec.EventReplan

// HealthPolicy parameterizes the per-device circuit breaker enabled with
// WithHealthPolicy. The zero value uses the documented defaults.
type HealthPolicy = session.HealthPolicy

// EngineOption configures a new Engine.
type EngineOption func(*engineConfig)

type engineConfig struct {
	sess       session.Config
	budgetFrac float64
	faultPlan  *fault.Plan
	fallback   *DeviceID
	retry      exec.RetryPolicy
	deadline   vclock.Duration
	adaptive   bool
	minChunk   int
	health     *session.HealthPolicy
	poolCap    int64
	poolPolicy bufpool.Policy
	fuse       bool
	auto       bool
	shards     int
	shardLoss  shard.LossMode
	shardHedge shard.HedgePolicy
	shardFail  int
}

// CachePolicy selects the buffer pool's eviction order (see
// WithBufferPool).
type CachePolicy = bufpool.Policy

// Buffer-pool eviction policies.
const (
	// CacheCostAware evicts the column that is cheapest to re-ship
	// (bytes × the engine's measured ns/byte), LRU breaking ties.
	CacheCostAware = bufpool.CostAware
	// CacheLRU evicts the least-recently-used column.
	CacheLRU = bufpool.LRU
)

// ParseCachePolicy parses a policy name ("cost" or "lru").
func ParseCachePolicy(s string) (CachePolicy, error) { return bufpool.ParsePolicy(s) }

// CacheStats is a snapshot of the buffer pool's activity (see
// Engine.CacheStats).
type CacheStats = bufpool.Stats

// CachePoint is one lookup outcome of the cache hit-ratio timeline.
type CachePoint = bufpool.TimelinePoint

// WithBufferPool arms the engine's cross-query device buffer pool: up to
// capacityBytes of base columns are kept resident per device across
// queries, so a repeated workload ships each hot column over the bus once
// instead of once per query (the cold-vs-warm separation of the paper's
// Fig. 11 discussion). Concurrent queries over the same cold column join
// one in-flight transfer; in-use columns are lease-pinned and never
// evicted; the session scheduler charges pooled bytes once against the
// device budget and can evict cold columns to admit a waiting query. Zero
// or negative capacity leaves pooling off (the default), preserving the
// legacy per-query transfer path byte for byte.
func WithBufferPool(capacityBytes int64, policy CachePolicy) EngineOption {
	return func(c *engineConfig) {
		c.poolCap = capacityBytes
		c.poolPolicy = policy
	}
}

// WithFusion enables the operator-fusion pass: before execution, every plan
// is rewritten so that fusible selection→map→{reduce,materialize} chains run
// as single-pass fused kernels, skipping the bitmap and gathered-column
// intermediates of the unfused path (and the demand they would have charged
// at admission). Chains containing a non-fusible operator — OR/NOT filter
// combinations, column-column comparisons, semi-joins, position lists —
// stay on the unfused path, and results are bit-for-bit identical either
// way. Fused launches show up as FUSED_* primitives in ExplainAnalyze and
// as fuse spans in traces.
func WithFusion() EngineOption {
	return func(c *engineConfig) { c.fuse = true }
}

// FusionEnabled reports whether the engine rewrites plans with the fusion
// pass before executing them.
func (e *Engine) FusionEnabled() bool { return e.fuse }

// WithMaxConcurrent caps how many queries execute concurrently on the
// engine; further queries wait in the admission queue. Zero (the default)
// means unlimited.
func WithMaxConcurrent(n int) EngineOption {
	return func(c *engineConfig) { c.sess.MaxConcurrent = n }
}

// WithAdmissionPolicy selects FIFO (default) or priority admission
// ordering for queued queries.
func WithAdmissionPolicy(p AdmissionPolicy) EngineOption {
	return func(c *engineConfig) { c.sess.Policy = p }
}

// WithAdmissionQueueLimit caps the admission queue; arrivals beyond it
// fail fast with ErrAdmission instead of waiting. Zero means unlimited.
func WithAdmissionQueueLimit(n int) EngineOption {
	return func(c *engineConfig) { c.sess.MaxQueued = n }
}

// WithFaultPlan arms deterministic fault injection: every device plugged
// after engine construction whose name the plan targets is wrapped in the
// injection layer. Queries then see typed faults (all wrapping ErrInjected)
// at the device interfaces, governed by the plan's seed — the same plan over
// the same workload reproduces the same faults. Nil disables injection.
func WithFaultPlan(p *FaultPlan) EngineOption {
	return func(c *engineConfig) { c.faultPlan = p }
}

// WithFallbackDevice names the device queries re-place onto when one of
// their devices dies mid-run. The fallback is usually a host-resident
// device (OpenMP CPU): it shares the host's memory, so a query that lost
// its GPU can always complete there. A failed-over query's results are
// identical to the fault-free run; the failover is recorded in the result's
// event log, and the dead device is quarantined in the admission scheduler.
func WithFallbackDevice(id DeviceID) EngineOption {
	return func(c *engineConfig) { c.fallback = &id }
}

// WithRetryPolicy makes the engine retry transient device faults (failed
// transfers, kernel launch errors) with capped exponential backoff charged
// in simulated time. The zero policy disables retries.
func WithRetryPolicy(p RetryPolicy) EngineOption {
	return func(c *engineConfig) {
		c.retry = exec.RetryPolicy{
			MaxRetries: p.MaxRetries,
			Backoff:    vclock.DurationOf(p.Backoff),
			BackoffCap: vclock.DurationOf(p.BackoffCap),
		}
	}
}

// WithDeadline sets an engine-wide virtual-time budget per query,
// overridable per query via ExecOptions.Deadline. Deadline-carrying queries
// are shed at admission when their predicted queue wait already exceeds the
// budget, and cut at the first chunk boundary past it; both failures wrap
// ErrDeadline. Zero disables deadlines.
func WithDeadline(d time.Duration) EngineOption {
	return func(c *engineConfig) { c.deadline = vclock.DurationOf(d) }
}

// WithAdaptiveChunking enables graceful OOM degradation: when a device
// allocation fails, the chunk-streaming models halve the effective chunk
// size and retry down to the given floor in elements (0 = the default
// floor), then re-place the query on a host-resident device as the last
// resort. Degradation steps appear in the result's event log and trace.
func WithAdaptiveChunking(minChunkElems int) EngineOption {
	return func(c *engineConfig) {
		c.adaptive = true
		c.minChunk = minChunkElems
	}
}

// WithHealthPolicy arms the per-device circuit breaker: the engine tracks a
// sliding error-rate window per device from every query's fault counts,
// quarantines a device when its breaker trips (or a failover proves it
// lost), and then runs cheap synthetic probation probes after each query;
// once HealthPolicy.ProbeSuccesses consecutive probes succeed the device is
// automatically readmitted — no manual Readmit needed. The zero policy uses
// the documented defaults.
func WithHealthPolicy(p HealthPolicy) EngineOption {
	return func(c *engineConfig) { c.health = &p }
}

// WithDeviceBudgetFraction enables memory admission control: each
// subsequently plugged non-host device gets an admission budget of the
// given fraction of its memory (1.0 = the full card). Queries whose
// estimated working set exceeds the budget are rejected with ErrAdmission;
// queries that fit the budget but not the memory currently free wait for
// running sessions to finish. Zero (the default) disables budget checks.
func WithDeviceBudgetFraction(f float64) EngineOption {
	return func(c *engineConfig) { c.budgetFrac = f }
}

// Engine is the unified runtime: a registry of plugged co-processors, the
// execution models that run primitive graphs on them, and a session
// scheduler that admits concurrent queries against per-device memory
// budgets. An Engine is safe for concurrent use: any number of goroutines
// may build plans and call Execute/ExecuteContext over the same engine.
type Engine struct {
	rt         *hub.Runtime
	sched      *session.Scheduler
	budgetFrac float64
	faultPlan  *fault.Plan
	fallback   *DeviceID
	retry      exec.RetryPolicy
	metrics    *trace.Metrics
	deadline   vclock.Duration
	adaptive   bool
	minChunk   int
	health     *session.HealthTracker
	tele       *engineTelemetry
	prof       *profile.Profiler
	profTele   *profileTelemetry
	tenant     string
	pool       *bufpool.Manager
	fuse       bool

	// sharding state (WithShards). shardCtxs[0] aliases the engine's own
	// rt/sched/pool; coord is nil when sharding is off. confErr records an
	// invalid option combination, surfaced at Plug/Execute (NewEngine
	// cannot return an error).
	shardCtxs  []shardCtx
	shardPlans []*fault.Plan
	coord      *shard.Coordinator
	confErr    error

	// auto-planning state (WithAutoPlan). calMu guards the one-time
	// calibration pass and catalog swaps (SeedCatalog); the catalog itself
	// is concurrency-safe.
	auto       bool
	catalog    *cost.Catalog
	planner    *cost.Planner
	calMu      sync.Mutex
	calibrated bool
}

// NewEngine returns an engine with no devices plugged. With no options the
// engine admits everything immediately (no concurrency cap, no memory
// budgets) — the single-user behaviour of the paper's runtime.
func NewEngine(opts ...EngineOption) *Engine {
	var cfg engineConfig
	for _, o := range opts {
		o(&cfg)
	}
	e := &Engine{
		rt:         hub.NewRuntime(),
		sched:      session.NewScheduler(cfg.sess),
		budgetFrac: cfg.budgetFrac,
		faultPlan:  cfg.faultPlan,
		fallback:   cfg.fallback,
		retry:      cfg.retry,
		metrics:    trace.NewMetrics(),
		deadline:   cfg.deadline,
		adaptive:   cfg.adaptive,
		minChunk:   cfg.minChunk,
		fuse:       cfg.fuse,
		auto:       cfg.auto,
	}
	if cfg.auto {
		e.catalog = cost.New()
		e.planner = cost.NewPlanner(e.catalog)
	}
	if cfg.health != nil {
		e.health = session.NewHealthTracker(*cfg.health)
	}
	if cfg.poolCap > 0 {
		e.pool = bufpool.New(bufpool.Config{
			Capacity:   cfg.poolCap,
			Policy:     cfg.poolPolicy,
			Cost:       e.metrics,
			Device:     e.rt.Device,
			Accountant: e.sched,
		})
		e.sched.SetPoolReclaimer(e.pool)
	}
	if cfg.shards > 1 {
		if cfg.auto {
			e.confErr = fmt.Errorf("adamant: WithShards cannot be combined with WithAutoPlan (the auto planner's calibration and catalog are per-runtime)")
		} else {
			e.buildShards(&cfg)
		}
	}
	return e
}

// shardCtx is one shard's engine stack: its own device registry, admission
// scheduler and (optional) buffer pool.
type shardCtx struct {
	rt    *hub.Runtime
	sched *session.Scheduler
	pool  *bufpool.Manager
}

// CacheEnabled reports whether the cross-query buffer pool is armed.
func (e *Engine) CacheEnabled() bool { return e.pool != nil }

// CacheStats snapshots the buffer pool's hit/miss/eviction activity. The
// zero value is returned when the pool is not armed.
func (e *Engine) CacheStats() CacheStats { return e.pool.Stats() }

// CacheTimeline returns the pool's recent lookup outcomes, oldest first —
// the hit-ratio timeline behind the -serve /cache endpoint. Nil without
// WithBufferPool.
func (e *Engine) CacheTimeline() []CachePoint { return e.pool.Timeline() }

// FlushCache evicts every cached column not currently leased by a running
// query and returns the bytes freed. Harnesses flush before comparing
// device memory against a pre-query baseline.
func (e *Engine) FlushCache() int64 {
	n := e.pool.Flush()
	for s := 1; s < len(e.shardCtxs); s++ {
		n += e.shardCtxs[s].pool.Flush()
	}
	return n
}

// Plug registers a simulated co-processor accessed through the given SDK
// and returns its device ID. Plugging is the only device-specific step: the
// execution models work unchanged with whatever is plugged.
func (e *Engine) Plug(hw Hardware, sdk SDK) (DeviceID, error) {
	if e.confErr != nil {
		return 0, e.confErr
	}
	spec, err := hw.spec()
	if err != nil {
		return 0, err
	}
	mk, err := deviceMaker(spec, sdk)
	if err != nil {
		return 0, err
	}
	return e.register(mk)
}

// deviceMaker resolves a (hardware, SDK) pair to a device constructor —
// sharded engines call it once per shard, so each shard gets its own
// instance with independent clocks and memory.
func deviceMaker(spec *simhw.Spec, sdk SDK) (func() device.Device, error) {
	switch sdk {
	case CUDA:
		if spec.HostResident() {
			return nil, fmt.Errorf("adamant: CUDA cannot drive host CPU %s", spec.Name)
		}
		return func() device.Device { return simcuda.New(spec, nil) }, nil
	case OpenCL:
		if spec.HostResident() {
			return func() device.Device { return simopencl.NewCPU(spec, nil) }, nil
		}
		return func() device.Device { return simopencl.NewGPU(spec, nil) }, nil
	case OpenMP:
		if !spec.HostResident() {
			return nil, fmt.Errorf("adamant: OpenMP cannot drive GPU %s", spec.Name)
		}
		return func() device.Device { return simomp.New(spec, nil) }, nil
	default:
		return nil, fmt.Errorf("adamant: unknown SDK %d", int(sdk))
	}
}

// PlugDevice registers a custom device implementation. Any type satisfying
// the device layer's ten interfaces can be plugged without changing the
// runtime — the paper's headline claim. A sharded engine rejects it (a
// single instance cannot be replicated across runtimes); use PlugMaker.
func (e *Engine) PlugDevice(d device.Device) (DeviceID, error) {
	if e.confErr != nil {
		return 0, e.confErr
	}
	if len(e.shardCtxs) > 1 {
		return 0, fmt.Errorf("adamant: PlugDevice cannot replicate one device instance across %d shards; use PlugMaker", len(e.shardCtxs))
	}
	return e.registerOn(0, d)
}

// PlugMaker registers a custom device on every shard by calling mk once
// per shard runtime (once total when sharding is off). Each call must
// return a fresh instance.
func (e *Engine) PlugMaker(mk func() device.Device) (DeviceID, error) {
	if e.confErr != nil {
		return 0, e.confErr
	}
	return e.register(mk)
}

// register plugs one device instance per shard runtime (just the engine's
// own when sharding is off). Shards must stay mirror images: a divergent
// device ID across shards is an internal error.
func (e *Engine) register(mk func() device.Device) (DeviceID, error) {
	id, err := e.registerOn(0, mk())
	if err != nil {
		return 0, err
	}
	for s := 1; s < len(e.shardCtxs); s++ {
		sid, err := e.registerOn(s, mk())
		if err != nil {
			return 0, fmt.Errorf("adamant: plugging shard %d: %w", s, err)
		}
		if sid != id {
			return 0, fmt.Errorf("adamant: shard %d assigned device id %d, shard 0 assigned %d", s, sid, id)
		}
	}
	return id, nil
}

// registerOn plugs a device into shard s — wrapped in the fault-injection
// layer when that shard's fault plan targets it — and applies the
// admission budget to the shard's scheduler.
func (e *Engine) registerOn(s int, d device.Device) (DeviceID, error) {
	plan := e.faultPlan
	if s > 0 {
		plan = e.shardPlans[s]
	}
	if plan != nil && plan.Enabled() && plan.AppliesTo(d.Info().Name) {
		d = fault.Wrap(d, plan)
	}
	rt, sched := e.rt, e.sched
	if s > 0 {
		rt, sched = e.shardCtxs[s].rt, e.shardCtxs[s].sched
	}
	id, err := rt.Register(d)
	if err != nil {
		return 0, err
	}
	info := d.Info()
	if e.budgetFrac > 0 && !info.HostResident && info.MemoryBytes > 0 {
		sched.SetBudget(id, int64(e.budgetFrac*float64(info.MemoryBytes)))
	}
	return id, nil
}

// SetDeviceBudget sets (or, with bytes <= 0, clears) the admission budget
// for one device, overriding WithDeviceBudgetFraction.
func (e *Engine) SetDeviceBudget(id DeviceID, bytes int64) {
	e.sched.SetBudget(id, bytes)
}

// AdmissionStats reports the session scheduler's counters: admitted,
// rejected and queued-before-running totals plus current queue depth.
func (e *Engine) AdmissionStats() AdmissionStats { return e.sched.Stats() }

// DeviceInfo describes a plugged device.
type DeviceInfo struct {
	ID             DeviceID
	Name           string
	SDK            string
	MemoryBytes    int64
	HostResident   bool
	PinnedTransfer bool
	RuntimeCompile bool
}

// Devices lists the plugged devices.
func (e *Engine) Devices() []DeviceInfo {
	var out []DeviceInfo
	for i, d := range e.rt.Devices() {
		info := d.Info()
		out = append(out, DeviceInfo{
			ID:             DeviceID(i),
			Name:           info.Name,
			SDK:            info.SDK,
			MemoryBytes:    info.MemoryBytes,
			HostResident:   info.HostResident,
			PinnedTransfer: info.PinnedTransfer,
			RuntimeCompile: info.RuntimeCompile,
		})
	}
	return out
}

// Execute runs a plan under the given options. It is ExecuteContext with
// a background context.
func (e *Engine) Execute(p *Plan, opts ExecOptions) (*Result, error) {
	return e.ExecuteContext(context.Background(), p, opts)
}

// ExecuteContext runs a plan under the given options, honouring the
// context end to end: while the query waits in the admission queue and, at
// every chunk boundary, while it executes. A cancelled query releases all
// of its device and pinned buffers before returning, so the engine's
// memory returns to its pre-query baseline. The returned error wraps
// ctx.Err() on cancellation and ErrAdmission on admission rejection.
func (e *Engine) ExecuteContext(ctx context.Context, p *Plan, opts ExecOptions) (*Result, error) {
	if err := p.err(); err != nil {
		return nil, err
	}
	res, err := e.runGraph(ctx, p.graph(), e.execOptions(opts, e.queryDeadline(opts)), opts.Priority)
	if err != nil {
		return nil, err
	}
	return newResult(res), nil
}

// execOptions lowers the facade's per-query options onto the executor's,
// folding in every engine-wide setting (retry policy, fallback device,
// adaptive chunking, deadline). All execution paths — plan API, SQL
// front-end, EXPLAIN ANALYZE — go through it, so they degrade and trace
// uniformly.
func (e *Engine) execOptions(opts ExecOptions, deadline vclock.Duration) exec.Options {
	return exec.Options{
		Model:            exec.Model(opts.Model),
		ChunkElems:       opts.ChunkElems,
		Trace:            opts.Trace,
		Recorder:         opts.Recorder.internal(),
		Retry:            e.retry,
		FallbackDevice:   e.fallback,
		AdaptiveChunking: e.adaptive,
		MinChunkElems:    e.minChunk,
		Deadline:         deadline,
		Pool:             e.pool,
		Tenant:           opts.Tenant,
	}
}

// queryDeadline resolves a query's virtual-time budget: its own override,
// else the engine-wide default.
func (e *Engine) queryDeadline(opts ExecOptions) vclock.Duration {
	if opts.Deadline > 0 {
		return vclock.DurationOf(opts.Deadline)
	}
	return e.deadline
}

// runGraph is the shared admission + execution path: estimate the query's
// per-device working set, pass admission control, run, release.
func (e *Engine) runGraph(ctx context.Context, g *graph.Graph, opts exec.Options, priority int) (*exec.Result, error) {
	if e.confErr != nil {
		return nil, e.confErr
	}
	// The profiler keys usage by the normalized plan shape; fingerprint
	// before sharding and fusion so sharded, fused, and plain runs of the
	// same logical plan aggregate under one ledger key. With profiling
	// off (prof nil) this adds nothing to the hot path.
	var shape string
	if e.prof != nil {
		shape = graph.Fingerprint(g)
		if opts.Tenant == "" {
			opts.Tenant = e.tenant
		}
	}
	if e.coord != nil {
		// Sharding routes before fusion: the scatter planner partitions the
		// unfused plan, and each shard graph is fused individually (the
		// coordinator carries the fusion pass as its rewrite hook). Plans
		// the planner declines fall through and run unsharded on shard 0.
		res, ok, err := e.runSharded(ctx, g, opts, priority, shape)
		if ok {
			return res, err
		}
	}
	if e.fuse {
		// Fusion runs before demand estimation so the admission working set
		// shrinks with the intermediates the fused chains no longer allocate.
		g = graph.Fuse(g)
	}
	// Auto planning runs after fusion (fused plans get their own catalog
	// entries) and before demand estimation (admission must see the chosen
	// model and chunk size).
	var autoDec *cost.Decision
	autoMark := 0
	if e.auto {
		dec, err := e.autoPlan(g)
		if err != nil {
			return nil, err
		}
		autoDec = dec
		opts.Model = dec.Model
		opts.ChunkElems = dec.ChunkElems
		opts.PlanNotes = dec.Notes
		opts.Replan = dec.Replan()
		if opts.Recorder == nil {
			// The catalog learns from spans; auto mode always records.
			opts.Recorder = trace.NewRecorder()
		}
		autoMark = opts.Recorder.Len()
	}
	demand, err := exec.EstimateDemand(g, opts)
	if err != nil {
		return nil, err
	}
	// Telemetry bookkeeping: assign the query ID, route executor events to
	// the sink, and make sure a recorder exists so the flight recorder can
	// retain full spans for interesting queries. Recording never perturbs
	// virtual timings, so traces stay bit-identical with telemetry on; with
	// telemetry off (tel == nil) this path adds zero allocations.
	var (
		tel             = e.tele
		qid             uint64
		devName, driver string
		startVT         vclock.Time
		mark            int
	)
	if tel != nil {
		qid = tel.nextQuery.Add(1)
		opts.QueryID = qid
		opts.Events = tel.sink
		devName, driver = e.primaryDevice(demand)
		if opts.Recorder == nil {
			opts.Recorder = trace.NewRecorder()
		}
		mark = opts.Recorder.Len()
	}
	admitStart := time.Now()
	grant, err := e.sched.Admit(ctx, session.Request{
		Priority: priority,
		Demand:   demand,
		Deadline: opts.Deadline,
		Cost:     e.estimateCost(demand),
	})
	if err != nil {
		if errDeadline(err) {
			e.metrics.ObserveQuery(trace.QueryStats{Shed: true, Err: true})
		}
		e.prof.ObserveShed(shape, opts.Tenant)
		return nil, err
	}
	defer grant.Release()
	if opts.Recorder.Enabled() {
		// Admission happens in host time, before the query touches any
		// virtual timeline, so the span carries only a wall-clock duration
		// (kept out of the deterministic exports).
		opts.Recorder.Add(trace.Span{
			Parent: trace.NoSpan, Kind: trace.KindAdmission,
			Label: admissionLabel(grant.Queued()),
			Wall:  time.Since(admitStart),
			Node:  -1, Pipeline: -1, Chunk: -1,
		})
	}
	if tel != nil {
		startVT = e.vtNow()
		tel.sink.Emit(telemetry.Event{
			Type: telemetry.EventQueryStart, Query: qid,
			VT: int64(startVT), Device: devName, Model: opts.Model.String(),
		})
	}
	res, runErr := exec.RunContext(ctx, e.rt, g, opts)
	if res != nil {
		// A failover means the lost device is unhealthy: quarantine it so
		// later admissions charge its demand to the fallback's budget.
		// With a health tracker armed, quarantining goes through the
		// breaker (observeHealth) so probation probes can undo it.
		var failovers, degrades int64
		for _, ev := range res.Stats.Events {
			switch ev.Kind {
			case exec.EventFailover:
				failovers++
				if e.health == nil {
					e.sched.Quarantine(ev.From, ev.To)
				}
			case exec.EventDegrade:
				degrades++
			}
		}
		e.observeHealth(res, runErr)
		e.metrics.ObserveQuery(trace.QueryStats{
			Elapsed:      res.Stats.Elapsed,
			KernelTime:   res.Stats.KernelTime,
			TransferTime: res.Stats.TransferTime,
			OverheadTime: res.Stats.OverheadTime,
			H2DBytes:     res.Stats.H2DBytes,
			D2HBytes:     res.Stats.D2HBytes,
			Launches:     res.Stats.Launches,
			Chunks:       res.Stats.Chunks,
			Pipelines:    res.Stats.Pipelines,
			Retries:      res.Stats.Retries,
			Failovers:    failovers,
			Degrades:     degrades,
			Queued:       grant.Queued(),
			Err:          runErr != nil,
		})
	}
	if autoDec != nil {
		e.observeAutoPlan(autoDec, opts, res, runErr, autoMark)
	}
	if tel != nil {
		e.observeQueryTelemetry(qid, devName, driver, opts.Model.String(), shape, opts.Tenant,
			startVT, res, runErr, opts.Recorder.Spans()[mark:])
	}
	e.pulseHealth()
	return res, runErr
}

// estimateCost predicts a query's virtual runtime from its per-device
// demand estimate and the engine's observed cost per byte, for
// admission-side load shedding.
func (e *Engine) estimateCost(demand map[device.ID]int64) vclock.Duration {
	var bytes int64
	for _, b := range demand {
		bytes += b
	}
	return vclock.Duration(float64(bytes) * e.metrics.NsPerByte())
}

func admissionLabel(queued bool) string {
	if queued {
		return "admission (queued)"
	}
	return "admission"
}

// Quarantined lists the devices currently quarantined after failovers.
func (e *Engine) Quarantined() []DeviceID { return e.sched.Quarantined() }

// Readmit clears a device's quarantine (it recovered or was replaced).
func (e *Engine) Readmit(id DeviceID) { e.sched.Readmit(id) }

// Runtime exposes the underlying device registry for advanced integrations
// (custom experiment harnesses, direct device access).
func (e *Engine) Runtime() *hub.Runtime { return e.rt }
